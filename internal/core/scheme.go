package core

import (
	"math/rand"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// Options configures the SwitchV2P protocol. Every mechanism can be
// toggled independently for the paper's ablations (Table 4 variants,
// §5.3 topology-aware caching analysis).
type Options struct {
	// LinesPerSwitch is the per-switch cache size in entries. The paper
	// reports cache size as aggregate memory over all switches; the
	// harness divides it evenly.
	LinesPerSwitch int

	// SizeFor, when non-nil, overrides LinesPerSwitch per switch
	// (heterogeneous allocations, e.g. a ToR-only cache).
	SizeFor func(sw topology.Switch) int

	// PLearn is the probability that a gateway ToR generates a learning
	// packet upon learning a new mapping (§3.2.2; the evaluation uses
	// 0.5% of gateway-switch traffic).
	PLearn float64

	// LearningPackets enables gateway-ToR learning packet generation.
	LearningPackets bool
	// Spillover enables appending evicted entries to processed packets.
	Spillover bool
	// Promotion enables spine-to-core promotion of popular entries.
	Promotion bool
	// Invalidation enables targeted invalidation packets from ToRs.
	Invalidation bool
	// TimestampVector enables the per-ToR invalidation rate limiter.
	TimestampVector bool

	// LRU switches the per-switch caches from the paper's direct-mapped
	// design to an idealized fully-associative LRU cache (ablation).
	LRU bool

	// Tenancy, when non-nil, partitions every switch's cache among VPCs
	// and gates which tenants are cached at all (§4).
	Tenancy *Tenancy

	// Seed drives the learning-packet coin flips.
	Seed int64
}

// DefaultOptions returns the full SwitchV2P configuration used in the
// evaluation: all mechanisms on, P_learn = 0.5%.
func DefaultOptions(linesPerSwitch int) Options {
	return Options{
		LinesPerSwitch:  linesPerSwitch,
		PLearn:          0.005,
		LearningPackets: true,
		Spillover:       true,
		Promotion:       true,
		Invalidation:    true,
		TimestampVector: true,
		Seed:            1,
	}
}

// Layer indices for hit attribution (Table 5).
const (
	LayerToR = iota
	LayerSpine
	LayerCore
	numLayers
)

// Stats aggregates protocol-level measurements.
type Stats struct {
	Lookups int64
	Hits    int64

	HitsByLayer      [numLayers]int64 // all cache hits, by switch layer
	FirstHitsByLayer [numLayers]int64 // hits by flows' first data packets
	LookupsByLayer   [numLayers]int64 // all lookups, by switch layer
	EvictionsByLayer [numLayers]int64 // valid entries displaced by insertions

	LearningSent            int64 // learning packets generated
	InvalidationsSent       int64 // invalidation packets generated
	InvalidationsSuppressed int64 // suppressed by the timestamp vector
	EntriesInvalidated      int64 // cache lines removed by tags/packets
	MisdeliveryTagged       int64 // packets tagged by ToRs
	SpillAttached           int64 // evicted entries attached to packets
	SpillInserted           int64 // spilled entries re-inserted downstream
	PromoteAttached         int64 // promotions attached by spines
	PromoteInserted         int64 // promotions accepted by cores
}

func layerOf(r topology.SwitchRole) int {
	switch {
	case r.IsToR():
		return LayerToR
	case r.IsSpine():
		return LayerSpine
	default:
		return LayerCore
	}
}

// Scheme is the SwitchV2P data-plane protocol: one direct-mapped cache
// per switch plus the per-role admission policies and special functions
// of Table 1. It implements simnet.Scheme.
type Scheme struct {
	opts         Options
	topo         *topology.Topology
	roles        []topology.SwitchRole // current role per switch (dynamic, §4)
	caches       []MappingCache
	tenantCaches []map[vnet.TenantID]MappingCache // non-nil iff opts.Tenancy set
	// tsVec is the invalidation timestamp vector, indexed by switch with
	// the inner vector allocated lazily per ToR: tsVec[tor][target] is
	// the last time tor sent an invalidation to target (§3.3). A dense
	// outer slice (not a map) so concurrent shards touching different
	// ToRs never mutate shared map internals.
	tsVec [][]simtime.Time
	rng   *rand.Rand

	// Sharded-engine state (simnet.ShardAware): with slots non-nil every
	// hot-path stat mutation goes to slots[Engine.ShardSlot()] and every
	// learning coin flip to the matching rngs entry; SyncShards folds the
	// slot deltas into S at barriers. Nil slots (the serial engine)
	// preserve the original single-stream behavior exactly.
	slots []Stats
	rngs  []*rand.Rand

	S Stats
}

// New builds a SwitchV2P scheme over the topology.
func New(topo *topology.Topology, opts Options) *Scheme {
	s := &Scheme{
		opts:  opts,
		topo:  topo,
		tsVec: make([][]simtime.Time, len(topo.Switches)),
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
	s.roles = make([]topology.SwitchRole, len(topo.Switches))
	for i, sw := range topo.Switches {
		s.roles[i] = sw.Role
	}
	if opts.Tenancy != nil {
		s.tenantCaches = buildTenantCaches(topo, opts)
		return s
	}
	s.caches = make([]MappingCache, len(topo.Switches))
	for i, sw := range topo.Switches {
		lines := opts.LinesPerSwitch
		if opts.SizeFor != nil {
			lines = opts.SizeFor(sw)
		}
		if opts.LRU {
			s.caches[i] = NewAssocCache(lines)
		} else {
			s.caches[i] = NewCache(lines)
		}
	}
	return s
}

// Name implements simnet.Scheme.
func (s *Scheme) Name() string { return "SwitchV2P" }

// Stats returns the live protocol stats; the telemetry sampler reads
// them as windowed rates while the simulation runs. (Promoted into the
// baselines that embed *Scheme, e.g. GwCache and Hybrid.)
func (s *Scheme) Stats() *Stats { return &s.S }

// Cache exposes a switch's (single-tenant) cache for tests and
// analysis; with tenancy enabled use TenantCache instead.
func (s *Scheme) Cache(sw int32) MappingCache {
	if s.caches == nil {
		return zeroCache
	}
	return s.caches[sw]
}

// FlushCache implements simnet.CacheFlusher: a failed switch loses all
// per-switch protocol state — its mapping cache (every tenant's cache
// under tenancy) and, for ToRs, the invalidation timestamp vector. On
// recovery the switch re-learns transparently from passing traffic.
func (s *Scheme) FlushCache(sw int32) {
	if s.caches != nil {
		s.caches[sw].Flush()
	}
	if s.tenantCaches != nil {
		// Order-independent: flushing each tenant cache touches no
		// shared or ordered state.
		for _, c := range s.tenantCaches[sw] {
			c.Flush()
		}
	}
	if int(sw) < len(s.tsVec) {
		s.tsVec[sw] = nil
	}
}

// SetShardSlots implements simnet.ShardAware: allocate one stat slot and
// one learning-coin PRNG per shard domain. Each domain's PRNG seed is a
// pure function of (Options.Seed, domain), so coin flips are
// deterministic at any worker count (though the flip stream differs
// from the serial engine's single PRNG — sharded runs are their own
// determinism class, byte-identical across shard counts).
func (s *Scheme) SetShardSlots(n int) {
	s.slots = make([]Stats, n)
	s.rngs = make([]*rand.Rand, n)
	for i := range s.rngs {
		s.rngs[i] = rand.New(rand.NewSource(s.opts.Seed + int64(i+1)*0x5851F42D))
	}
}

// SyncShards implements simnet.ShardAware: fold every per-shard stat
// delta into the aggregate S. Runs single-threaded at shard barriers;
// every Stats field is a sum, so add-and-zero makes the barrier
// frequency unobservable.
func (s *Scheme) SyncShards() {
	for i := range s.slots {
		s.S.add(&s.slots[i])
		s.slots[i] = Stats{}
	}
}

// add accumulates o into s (all fields are sums).
func (s *Stats) add(o *Stats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	for i := 0; i < numLayers; i++ {
		s.HitsByLayer[i] += o.HitsByLayer[i]
		s.FirstHitsByLayer[i] += o.FirstHitsByLayer[i]
		s.LookupsByLayer[i] += o.LookupsByLayer[i]
		s.EvictionsByLayer[i] += o.EvictionsByLayer[i]
	}
	s.LearningSent += o.LearningSent
	s.InvalidationsSent += o.InvalidationsSent
	s.InvalidationsSuppressed += o.InvalidationsSuppressed
	s.EntriesInvalidated += o.EntriesInvalidated
	s.MisdeliveryTagged += o.MisdeliveryTagged
	s.SpillAttached += o.SpillAttached
	s.SpillInserted += o.SpillInserted
	s.PromoteAttached += o.PromoteAttached
	s.PromoteInserted += o.PromoteInserted
}

// stats returns the Stats the current event must mutate: the engine's
// shard slot when sharded, the aggregate otherwise.
//
//v2plint:hotpath
func (s *Scheme) stats(e *simnet.Engine) *Stats {
	if s.slots == nil {
		return &s.S
	}
	return &s.slots[e.ShardSlot()]
}

// rngFor returns the learning-coin PRNG for the current event's shard
// (the single scheme PRNG on the serial engine).
//
//v2plint:hotpath
func (s *Scheme) rngFor(e *simnet.Engine) *rand.Rand {
	if s.rngs == nil {
		return s.rng
	}
	return s.rngs[e.ShardSlot()]
}

// SenderResolve implements simnet.Scheme: SwitchV2P keeps the
// gateway-driven sending path — hosts always address a translation
// gateway; resolution happens opportunistically in the network.
func (s *Scheme) SenderResolve(e *simnet.Engine, host int32, p *packet.Packet) bool {
	if !p.Resolved {
		p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	}
	return true
}

// HostMisdeliver implements simnet.Scheme: the hypervisor re-forwards a
// packet it cannot deliver to a translation gateway (§3.3); the ToR will
// tag it on the way.
func (s *Scheme) HostMisdeliver(e *simnet.Engine, host int32, p *packet.Packet) {
	p.Resolved = false
	p.DstPIP = e.GatewayFor(p.SrcPIP, p.FlowID)
	e.Resend(host, p)
}

// SwitchArrive implements simnet.Scheme: the full per-switch pipeline.
func (s *Scheme) SwitchArrive(e *simnet.Engine, sw int32, from topology.NodeRef, p *packet.Packet) bool {
	role := s.roles[sw]
	cache := s.cacheFor(sw, p.VNI)
	st := s.stats(e)

	switch p.Kind {
	case packet.Learning:
		// Consumed (and learned, admission "All") by the ToR serving the
		// addressed host; forwarded untouched by switches en route.
		if host, ok := s.topo.HostByPIP(p.DstPIP); ok && s.topo.Hosts[host].ToR == sw {
			cache.Insert(p.Carried)
			return false
		}
		return true
	case packet.Invalidation:
		if cache.Invalidate(p.Carried.VIP, p.Carried.PIP) {
			st.EntriesInvalidated++
		}
		if target, ok := s.topo.SwitchByPIP(p.DstPIP); ok && target == sw {
			return false
		}
		return true
	}

	// --- tenant traffic (Data / Ack) ---

	// (1) Misdelivery tagging (§3.3): a ToR that receives, on a host-facing
	// port, a packet whose outer source is not the attached server is
	// seeing hypervisor re-forwarding of a misdelivered packet.
	if role.IsToR() && from.Kind == topology.KindHost {
		fromHost := &s.topo.Hosts[from.Idx]
		if !fromHost.Gateway && p.SrcPIP != fromHost.PIP && p.StalePIP != fromHost.PIP {
			p.Misdelivered = true
			p.StalePIP = fromHost.PIP
			st.MisdeliveryTagged++
			if s.opts.Invalidation && p.HitSwitch != packet.NoSwitch {
				s.sendInvalidation(e, st, sw, p.HitSwitch, p.DstVIP, p.StalePIP, p.VNI)
			}
			p.HitSwitch = packet.NoSwitch
		}
	}

	// (2) Tagged packets invalidate matching stale entries on every switch
	// they traverse.
	if p.Misdelivered {
		if cache.Invalidate(p.DstVIP, p.StalePIP) {
			st.EntriesInvalidated++
		}
	}

	// (3) Lookup — only for unresolved packets (§3.1, §4: resolved packets
	// are never looked up).
	hitHere := false
	hitWasAccessed := false
	if !p.Resolved && cache.Len() > 0 {
		st.Lookups++
		st.LookupsByLayer[layerOf(role)]++
		if pip, hit, was := cache.Lookup(p.DstVIP); hit && pip != p.StalePIP {
			p.DstPIP = pip
			p.Resolved = true
			p.HitSwitch = int32(sw)
			hitHere, hitWasAccessed = true, was
			st.Hits++
			st.HitsByLayer[layerOf(role)]++
			if p.FirstSent && p.Kind == packet.Data {
				st.FirstHitsByLayer[layerOf(role)]++
			}
		}
	}

	// (4) Promotion consumption at cores (§3.2.2): cores learn only from
	// promotions, conservatively.
	if p.Promote.IsValid() && role == topology.RoleCore {
		if res := cache.InsertIfClear(p.Promote); res.Inserted {
			st.PromoteInserted++
			s.noteEvict(st, role, res.Evicted)
			s.spill(st, p, res.Evicted)
		}
		p.Promote = netaddr.Mapping{}
	}

	// (5) Spillover consumption: any switch may opportunistically adopt an
	// entry evicted upstream, never displacing an active entry.
	if p.Spill.IsValid() && s.opts.Spillover && cache.Len() > 0 {
		if res := cache.InsertIfClear(p.Spill); res.Inserted {
			st.SpillInserted++
			s.noteEvict(st, role, res.Evicted)
			p.Spill = res.Evicted // cascade (usually zero)
		}
	}

	// (6) Learning, per role (Table 1).
	switch role {
	case topology.RoleGatewayToR:
		if p.Resolved {
			m := netaddr.Mapping{VIP: p.DstVIP, PIP: p.DstPIP}
			res := cache.Insert(m)
			s.noteEvict(st, role, res.Evicted)
			s.spill(st, p, res.Evicted)
			if res.New && s.opts.LearningPackets && s.rngFor(e).Float64() < s.opts.PLearn {
				// Skip senders attached to this very switch: their ToR is
				// the gateway ToR, which has just learned the mapping via
				// destination learning — there is nowhere closer to move it.
				srcHost, ok := s.topo.HostByPIP(p.SrcPIP)
				if ok && s.topo.Hosts[srcHost].ToR != sw {
					lp := packet.NewLearning(m, s.topo.Switches[sw].PIP, p.SrcPIP)
					lp.VNI = p.VNI
					st.LearningSent++
					e.InjectFromSwitch(sw, lp)
				}
			}
		}
	case topology.RoleToR:
		if m := (netaddr.Mapping{VIP: p.SrcVIP, PIP: p.SrcPIP}); m.IsValid() {
			res := cache.Insert(m)
			s.noteEvict(st, role, res.Evicted)
			s.spill(st, p, res.Evicted)
		}
	case topology.RoleSpine, topology.RoleGatewaySpine:
		if p.Resolved {
			res := cache.InsertIfClear(netaddr.Mapping{VIP: p.DstVIP, PIP: p.DstPIP})
			s.noteEvict(st, role, res.Evicted)
			s.spill(st, p, res.Evicted)
		}
	case topology.RoleCore:
		// Cores learn only from promotions, handled in (4).
	}

	// (7) Promotion generation (§3.2.2): a regular spine whose cache just
	// resolved a gateway-bound packet from an entry that was already in
	// active use promotes the entry to the core layer — but only when the
	// packet actually leaves the pod.
	if hitHere && hitWasAccessed && role == topology.RoleSpine && s.opts.Promotion && !p.Promote.IsValid() {
		if dstHost, ok := s.topo.HostByPIP(p.DstPIP); ok &&
			s.topo.Hosts[dstHost].Pod != s.topo.Switches[sw].Pod {
			p.Promote = netaddr.Mapping{VIP: p.DstVIP, PIP: p.DstPIP}
			st.PromoteAttached++
		}
	}

	return true
}

// noteEvict counts a displaced valid entry toward the per-layer
// eviction stats (st: see stats).
func (s *Scheme) noteEvict(st *Stats, role topology.SwitchRole, evicted netaddr.Mapping) {
	if evicted.IsValid() {
		st.EvictionsByLayer[layerOf(role)]++
	}
}

// spill attaches an evicted entry to the packet being processed if the
// spillover slot is free (§3.2.2 "Cache spillover").
func (s *Scheme) spill(st *Stats, p *packet.Packet, evicted netaddr.Mapping) {
	if s.opts.Spillover && evicted.IsValid() && !p.Spill.IsValid() {
		p.Spill = evicted
		st.SpillAttached++
	}
}

// sendInvalidation emits a targeted invalidation packet from ToR tor to
// the switch that served the stale hit, rate-limited by the timestamp
// vector: at most one invalidation per target per base RTT (§3.3).
func (s *Scheme) sendInvalidation(e *simnet.Engine, st *Stats, tor, target int32, vip netaddr.VIP, stale netaddr.PIP, vni uint32) {
	if s.opts.TimestampVector {
		// tor is always the switch processing the current event, so the
		// lazy inner allocation is owned by tor's shard.
		vec := s.tsVec[tor]
		if vec == nil {
			vec = make([]simtime.Time, len(s.topo.Switches))
			for i := range vec {
				vec[i] = -1
			}
			s.tsVec[tor] = vec
		}
		now := e.Now()
		if vec[target] >= 0 && now.Sub(vec[target]) < e.Cfg.BaseRTT {
			st.InvalidationsSuppressed++
			return
		}
		vec[target] = now
	}
	inv := packet.NewInvalidation(vip, stale,
		s.topo.Switches[tor].PIP, s.topo.Switches[target].PIP)
	inv.VNI = vni
	st.InvalidationsSent++
	e.InjectFromSwitch(tor, inv)
}

// TotalCacheHitShare returns the share of hits per layer (Table 5 rows);
// all zeros when there were no hits.
func (s *Stats) TotalCacheHitShare() [numLayers]float64 {
	return share(s.HitsByLayer)
}

// FirstPacketHitShare returns the per-layer share of first-packet hits.
func (s *Stats) FirstPacketHitShare() [numLayers]float64 {
	return share(s.FirstHitsByLayer)
}

func share(counts [numLayers]int64) [numLayers]float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	var out [numLayers]float64
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// Role returns the switch's current protocol role (which may have been
// changed at runtime by a gateway migration, §4).
func (s *Scheme) Role(sw int32) topology.SwitchRole { return s.roles[sw] }

// SetRole changes a switch's protocol role at runtime — the
// control-plane operation the paper describes for gateway migration
// (§4 "Gateway migration"): the former gateway ToR transitions to
// standard ToR behavior and the new one takes over. Cache state is NOT
// migrated; it is rebuilt at the destination by the normal learning
// mechanisms.
func (s *Scheme) SetRole(sw int32, role topology.SwitchRole) { s.roles[sw] = role }
