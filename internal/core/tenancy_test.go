package core

import (
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

// tenantWorld builds a two-tenant deployment: tenants A (id 1) and B
// (id 2), each with VMs spread over the servers.
type tenantWorld struct {
	topo   *topology.Topology
	net    *vnet.Net
	scheme *Scheme
	e      *simnet.Engine
	a, b   []netaddr.VIP
}

func newTenantWorld(t testing.TB, opts Options) *tenantWorld {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	servers := topo.Servers()
	w := &tenantWorld{topo: topo, net: n}
	for i := 0; i < 64; i++ {
		va, err := n.AddVMForTenant(servers[i%len(servers)], 1)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := n.AddVMForTenant(servers[(i+7)%len(servers)], 2)
		if err != nil {
			t.Fatal(err)
		}
		w.a = append(w.a, va)
		w.b = append(w.b, vb)
	}
	w.scheme = New(topo, opts)
	w.e = simnet.New(topo, n, w.scheme, simnet.DefaultConfig())
	return w
}

func (w *tenantWorld) send(flow uint64, src, dst netaddr.VIP) {
	host, _ := w.net.HostOf(src)
	w.e.HostSend(host, packet.NewData(flow, 0, 500, src, dst, 0))
	w.e.Run(simtime.Never)
}

func tenancyOpts(shares map[vnet.TenantID]float64) Options {
	opts := DefaultOptions(256)
	opts.LearningPackets = false
	opts.Tenancy = &Tenancy{Shares: shares}
	return opts
}

func TestTenantIsolation(t *testing.T) {
	w := newTenantWorld(t, tenancyOpts(map[vnet.TenantID]float64{1: 0.5, 2: 0.5}))

	// Tenant A's flow warms A's partitions.
	w.send(1, w.a[0], w.a[9])
	gwAfterA := w.e.C.GatewayPackets
	w.send(2, w.a[0], w.a[9])
	if w.e.C.GatewayPackets != gwAfterA {
		t.Fatalf("tenant A repeat flow used the gateway")
	}

	// Tenant B sending to ITS OWN VM must not see tenant A's entries —
	// and A's warm entries must not be visible to B's lookups anywhere.
	hostB, _ := w.net.HostOf(w.b[0])
	pB := packet.NewData(3, 0, 500, w.b[0], w.b[9], 0)
	w.e.HostSend(hostB, pB)
	w.e.Run(simtime.Never)
	if w.e.C.GatewayPackets != gwAfterA+1 {
		t.Fatalf("tenant B first flow did not go to the gateway (gw=%d)", w.e.C.GatewayPackets)
	}

	// Partitions are disjoint objects: A's mapping never appears in B's.
	pipA, _ := w.net.Lookup(w.a[9])
	for _, sw := range w.topo.Switches {
		if pip, ok := w.scheme.TenantCache(sw.Idx, 2).Peek(w.a[9]); ok && pip == pipA {
			t.Fatalf("tenant A mapping leaked into tenant B partition on switch %d", sw.Idx)
		}
	}
}

func TestTenantDisabledPolicy(t *testing.T) {
	opts := tenancyOpts(map[vnet.TenantID]float64{1: 0.5, 2: 0.5})
	opts.Tenancy.Enabled = func(id vnet.TenantID) bool { return id == 1 }
	w := newTenantWorld(t, opts)

	// Tenant 1 benefits from caching.
	w.send(1, w.a[0], w.a[9])
	gw := w.e.C.GatewayPackets
	w.send(2, w.a[0], w.a[9])
	if w.e.C.GatewayPackets != gw {
		t.Fatal("enabled tenant missed in-network cache")
	}
	// Tenant 2 always goes through gateways, no matter how often.
	for i := 0; i < 3; i++ {
		w.send(uint64(10+i), w.b[0], w.b[9])
	}
	if got := w.e.C.GatewayPackets - gw; got != 3 {
		t.Fatalf("disabled tenant gateway packets = %d, want 3", got)
	}
}

func TestTenantWithoutShareNotCached(t *testing.T) {
	// Only tenant 1 has a partition; tenant 2 has no share at all.
	w := newTenantWorld(t, tenancyOpts(map[vnet.TenantID]float64{1: 1.0}))
	w.send(1, w.b[0], w.b[9])
	gw := w.e.C.GatewayPackets
	w.send(2, w.b[0], w.b[9])
	if w.e.C.GatewayPackets != gw+1 {
		t.Fatal("share-less tenant hit a cache")
	}
}

func TestTenantPartitionSizes(t *testing.T) {
	opts := tenancyOpts(map[vnet.TenantID]float64{1: 0.75, 2: 0.25})
	w := newTenantWorld(t, opts)
	for _, sw := range w.topo.Switches {
		c1 := w.scheme.TenantCache(sw.Idx, 1).Len()
		c2 := w.scheme.TenantCache(sw.Idx, 2).Len()
		if c1 != 192 || c2 != 64 {
			t.Fatalf("switch %d partitions = %d/%d, want 192/64", sw.Idx, c1, c2)
		}
	}
}

func TestTenantVNIOnWire(t *testing.T) {
	w := newTenantWorld(t, tenancyOpts(map[vnet.TenantID]float64{1: 0.5, 2: 0.5}))
	var seen *packet.Packet
	w.e.Handler = func(host int32, p *packet.Packet) { seen = p }
	w.send(1, w.b[0], w.b[9])
	if seen == nil || seen.VNI != 2 {
		t.Fatalf("delivered packet VNI = %+v, want 2", seen)
	}
	// And it survives the wire round trip.
	q, err := packet.Unmarshal(seen.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.VNI != 2 {
		t.Fatalf("wire VNI = %d, want 2", q.VNI)
	}
}

func TestTenantMigrationInvalidation(t *testing.T) {
	// The invalidation protocol works per tenant partition.
	opts := tenancyOpts(map[vnet.TenantID]float64{1: 0.5, 2: 0.5})
	opts.LearningPackets = true
	opts.PLearn = 1.0
	w := newTenantWorld(t, opts)
	src, dst := w.a[0], w.a[9]
	w.send(1, src, dst) // warm sender ToR via learning packet
	newHostVIP := w.a[30]
	newHost, _ := w.net.HostOf(newHostVIP)
	oldHost, _ := w.net.HostOf(dst)
	if oldHost == newHost {
		t.Skip("same host placement")
	}
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	var deliveredTo int32 = -1
	w.e.Handler = func(h int32, p *packet.Packet) { deliveredTo = h }
	w.send(2, src, dst)
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d", deliveredTo, newHost)
	}
	if w.scheme.S.EntriesInvalidated == 0 && w.e.C.Misdeliveries == 0 {
		t.Fatal("expected either a misdelivery or an invalidation")
	}
}

// TestTenantPartitionEvictionAccounting pins eviction accounting at
// partition granularity: overflowing one tenant's tiny partition shows
// up in Stats.EvictionsByLayer, occupancy never exceeds the partition's
// own capacity, and the idle tenant's partitions stay empty — evictions
// are charged to (and contained in) the partition that overflowed, not
// the switch as a whole.
func TestTenantPartitionEvictionAccounting(t *testing.T) {
	opts := tenancyOpts(map[vnet.TenantID]float64{1: 0.5, 2: 0.5})
	// 8 lines per switch → 4-line partitions, LRU so occupancy (not hash
	// collisions) decides when a valid entry is displaced.
	opts.LinesPerSwitch = 8
	opts.LRU = true
	w := newTenantWorld(t, opts)

	evictions := func() int64 {
		var n int64
		for _, e := range w.scheme.S.EvictionsByLayer {
			n += e
		}
		return n
	}

	// Within partition capacity: distinct destinations fill the sender
	// ToR's 4-line partition without displacing anything.
	for i := 0; i < 4; i++ {
		w.send(uint64(1+i), w.a[0], w.a[10+i])
	}
	if n := evictions(); n != 0 {
		t.Fatalf("evictions before overflow = %d", n)
	}

	// Far past capacity: the partition must evict, and the evictions
	// must be accounted by layer.
	for i := 0; i < 24; i++ {
		w.send(uint64(100+i), w.a[0], w.a[14+i])
	}
	if n := evictions(); n == 0 {
		t.Fatal("partition overflow produced no accounted evictions")
	}
	if w.scheme.S.EvictionsByLayer[LayerToR] == 0 {
		t.Fatalf("no ToR-layer evictions despite sender-ToR overflow: %+v",
			w.scheme.S.EvictionsByLayer)
	}

	// Containment: no partition ever holds more than its own capacity,
	// and tenant B — which sent nothing — still has empty partitions on
	// every switch.
	for _, sw := range w.topo.Switches {
		c1 := w.scheme.TenantCache(sw.Idx, 1)
		if c1.Used() > c1.Len() {
			t.Fatalf("switch %d tenant 1 occupancy %d > capacity %d", sw.Idx, c1.Used(), c1.Len())
		}
		if used := w.scheme.TenantCache(sw.Idx, 2).Used(); used != 0 {
			t.Fatalf("switch %d idle tenant 2 partition holds %d entries", sw.Idx, used)
		}
	}
}

func TestSingleTenantPathUnchanged(t *testing.T) {
	// With Tenancy nil, tenant ids are ignored and the shared cache works.
	opts := DefaultOptions(256)
	opts.LearningPackets = false
	w := newTenantWorld(t, opts)
	w.send(1, w.a[0], w.b[9]) // cross-tenant traffic is fine without isolation
	gw := w.e.C.GatewayPackets
	w.send(2, w.a[0], w.b[9])
	if w.e.C.GatewayPackets != gw {
		t.Fatal("shared-cache repeat flow used the gateway")
	}
}
