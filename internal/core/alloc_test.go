package core

import (
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
)

func ft8(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func allocTotal(topo *topology.Topology, f func(topology.Switch) int) int {
	total := 0
	for _, sw := range topo.Switches {
		total += f(sw)
	}
	return total
}

func TestAllocUniform(t *testing.T) {
	topo := ft8(t)
	f := AllocUniform(topo, 8000)
	for _, sw := range topo.Switches {
		if got := f(sw); got != 100 {
			t.Fatalf("uniform share = %d, want 100", got)
		}
	}
}

func TestAllocToROnly(t *testing.T) {
	topo := ft8(t)
	f := AllocToROnly(topo, 3200)
	for _, sw := range topo.Switches {
		want := 0
		if sw.Role.IsToR() {
			want = 100
		}
		if got := f(sw); got != want {
			t.Fatalf("%v share = %d, want %d", sw.Role, got, want)
		}
	}
	if got := allocTotal(topo, f); got != 3200 {
		t.Fatalf("total = %d, want 3200", got)
	}
}

func TestAllocWeighted(t *testing.T) {
	topo := ft8(t)
	f := AllocWeighted(topo, 8000, 1, 2, 4)
	var tor, spine, core int
	for _, sw := range topo.Switches {
		switch {
		case sw.Role.IsToR():
			tor = f(sw)
		case sw.Role.IsSpine():
			spine = f(sw)
		default:
			core = f(sw)
		}
	}
	if spine != 2*tor || core != 4*tor {
		t.Fatalf("weights not respected: tor=%d spine=%d core=%d", tor, spine, core)
	}
	// The budget is approximately preserved (integer division slack).
	if got := allocTotal(topo, f); got < 7800 || got > 8000 {
		t.Fatalf("total = %d, want ~8000", got)
	}
}

func TestAllocWeightedZeroLayers(t *testing.T) {
	topo := ft8(t)
	f := AllocWeighted(topo, 8000, 0, 0, 0)
	if got := allocTotal(topo, f); got != 0 {
		t.Fatalf("zero weights allocated %d entries", got)
	}
}

func TestAllocBandwidthProportional(t *testing.T) {
	topo := ft8(t)
	f := AllocBandwidthProportional(topo, 8000)
	var tor, core int
	for _, sw := range topo.Switches {
		switch {
		case sw.Role.IsToR():
			tor = f(sw)
		case sw.Role == topology.RoleCore:
			core = f(sw)
		}
	}
	if core <= tor {
		t.Fatalf("cores (%d) should get more than ToRs (%d)", core, tor)
	}
}

// TestToROnlyAllocationBehavior checks the §4 observation: a ToR-only
// cache still reduces FCT (hits at sender ToRs) but does worse on the
// shared higher layers.
func TestToROnlyAllocationBehavior(t *testing.T) {
	opts := DefaultOptions(0)
	opts.PLearn = 1.0
	topo := ft8(t)
	opts.SizeFor = AllocToROnly(topo, 8000)
	w := newWorld(t, opts)
	w.send(1, 0, w.vips[0], w.vips[9], true)
	w.send(1, 1, w.vips[0], w.vips[9], false)
	if w.scheme.S.HitsByLayer[LayerSpine] != 0 || w.scheme.S.HitsByLayer[LayerCore] != 0 {
		t.Fatalf("ToR-only allocation produced non-ToR hits: %+v", w.scheme.S.HitsByLayer)
	}
}

// TestGatewayMigrationRoles exercises §4 "Gateway migration": re-roling
// a standard ToR into a gateway ToR makes it start generating learning
// packets, while the demoted one stops.
func TestGatewayMigrationRoles(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)

	// Promote the destination's ToR (a regular ToR) to gateway-ToR role
	// and demote the pod-0 gateway ToR, as a gateway migration would.
	src, dst := w.vips[0], w.vips[9]
	dstHost := w.hostOf(dst)
	newGwToR := w.topo.Hosts[dstHost].ToR
	if w.scheme.Role(newGwToR) != topology.RoleToR {
		t.Fatalf("precondition: dst ToR role = %v", w.scheme.Role(newGwToR))
	}
	var oldGwToR int32 = -1
	for _, sw := range w.topo.Switches {
		if sw.Role == topology.RoleGatewayToR && sw.Pod == 0 {
			oldGwToR = sw.Idx
			break
		}
	}
	w.scheme.SetRole(oldGwToR, topology.RoleToR)
	w.scheme.SetRole(newGwToR, topology.RoleGatewayToR)
	if w.scheme.Role(oldGwToR) != topology.RoleToR || w.scheme.Role(newGwToR) != topology.RoleGatewayToR {
		t.Fatal("SetRole did not take effect")
	}

	// A resolved delivery to dst now passes the NEW gateway ToR, which
	// destination-learns (its new role) and generates a learning packet
	// toward the sender (P_learn = 1). Under its old ToR role it would
	// only have source-learned the sender's mapping.
	pip, _ := w.net.Lookup(dst)
	p := packet.NewData(1, 0, 500, src, dst, 0)
	p.Resolved = true
	p.DstPIP = pip
	w.e.HostSend(w.hostOf(src), p)
	w.e.Run(simtime.Never)

	if got, ok := w.scheme.Cache(newGwToR).Peek(dst); !ok || got != pip {
		t.Fatalf("re-roled ToR did not destination-learn: %v %v", got, ok)
	}
	if w.scheme.S.LearningSent == 0 {
		t.Fatal("re-roled gateway ToR generated no learning packet")
	}
	// The sender's ToR received that learning packet.
	srcToR := w.topo.Hosts[w.hostOf(src)].ToR
	if got, ok := w.scheme.Cache(srcToR).Peek(dst); !ok || got != pip {
		t.Fatalf("sender ToR did not receive the learning packet: %v %v", got, ok)
	}
	_ = netaddr.Mapping{}
}
