// Package core implements SwitchV2P, the paper's contribution: a
// topology-aware, data-plane protocol that caches virtual-to-physical
// address mappings inside network switches and learns them transparently
// from passing traffic (§3).
//
// The package provides the direct-mapped in-switch cache (Cache) and the
// full distributed protocol (Scheme), which plugs into the simulator via
// the simnet.Scheme interface. The Cache type is also reused by the
// cache-based baselines in internal/baselines.
package core

import (
	"switchv2p/internal/netaddr"
)

// entry is one cache line: key (VIP), value (PIP), and the access bit the
// admission policies consult (§3.2 "Cache structure").
type entry struct {
	vip    netaddr.VIP
	pip    netaddr.PIP
	access bool
}

// Cache is a direct-mapped V2P mapping cache, as implementable with three
// register arrays in a switch data plane (§3.4). A zero-line cache is
// valid and never hits; this models switches that do not cache.
type Cache struct {
	lines []entry

	// Counters for analysis.
	Lookups int64
	Hits    int64
}

// NewCache returns a cache with the given number of lines.
func NewCache(lines int) *Cache {
	if lines < 0 {
		panic("core: negative cache size")
	}
	return &Cache{lines: make([]entry, lines)}
}

// Len returns the number of lines.
func (c *Cache) Len() int { return len(c.lines) }

// Used returns the number of occupied lines (test/analysis helper).
func (c *Cache) Used() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].vip.IsValid() {
			n++
		}
	}
	return n
}

func (c *Cache) line(vip netaddr.VIP) *entry {
	return &c.lines[netaddr.HashVIP(vip)%uint32(len(c.lines))]
}

// Lookup searches for vip. On a hit it sets the line's access bit and
// returns the physical address. On a miss that lands on an occupied line
// holding a different key, the line's access bit is cleared — the
// single-bit recency signal from §3.2: "The access bit is turned off when
// a lookup ends up accessing that cache line but it is a miss."
// wasAccessed reports whether the access bit was already set before this
// lookup (the spine promotion trigger).
func (c *Cache) Lookup(vip netaddr.VIP) (pip netaddr.PIP, hit, wasAccessed bool) {
	if len(c.lines) == 0 {
		return netaddr.NoPIP, false, false
	}
	c.Lookups++
	ln := c.line(vip)
	if ln.vip == vip {
		c.Hits++
		wasAccessed = ln.access
		ln.access = true
		return ln.pip, true, wasAccessed
	}
	ln.access = false
	return netaddr.NoPIP, false, false
}

// Peek returns the mapping for vip without touching access bits or
// counters (test/analysis helper).
func (c *Cache) Peek(vip netaddr.VIP) (netaddr.PIP, bool) {
	if len(c.lines) == 0 {
		return netaddr.NoPIP, false
	}
	ln := c.line(vip)
	if ln.vip == vip {
		return ln.pip, true
	}
	return netaddr.NoPIP, false
}

// InsertResult describes what an insertion attempt did.
type InsertResult struct {
	// Inserted is true if the mapping is now in the cache (newly admitted
	// or refreshed).
	Inserted bool
	// New is true if the key was not previously present (a genuinely new
	// mapping — gateway ToRs generate learning packets only for these).
	New bool
	// Evicted is the valid mapping displaced by the insertion, if any
	// (the spillover payload).
	Evicted netaddr.Mapping
}

// Insert admits mapping m unconditionally (the "All" admission policy of
// ToRs and gateway ToRs, Table 1). If the line holds the same key, the
// value is refreshed in place. New entries start with the access bit
// clear: an entry is only proven useful by a subsequent hit.
func (c *Cache) Insert(m netaddr.Mapping) InsertResult {
	if len(c.lines) == 0 || !m.IsValid() {
		return InsertResult{}
	}
	ln := c.line(m.VIP)
	if ln.vip == m.VIP {
		changed := ln.pip != m.PIP
		ln.pip = m.PIP
		if changed {
			// A remapped VIP is effectively a new mapping: its old value
			// was stale.
			ln.access = false
		}
		return InsertResult{Inserted: true, New: false}
	}
	res := InsertResult{Inserted: true, New: true}
	if ln.vip.IsValid() {
		res.Evicted = netaddr.Mapping{VIP: ln.vip, PIP: ln.pip}
	}
	*ln = entry{vip: m.VIP, pip: m.PIP}
	return res
}

// InsertIfClear admits m only if the target line is empty, holds the same
// key, or has its access bit clear — the conservative admission policy of
// spines, gateway spines and cores (Table 1): never evict an entry that
// is known to be in active use for one that is merely plausible.
func (c *Cache) InsertIfClear(m netaddr.Mapping) InsertResult {
	if len(c.lines) == 0 || !m.IsValid() {
		return InsertResult{}
	}
	ln := c.line(m.VIP)
	if ln.vip != m.VIP && ln.vip.IsValid() && ln.access {
		return InsertResult{} // occupied by an actively used entry
	}
	return c.Insert(m)
}

// Invalidate removes the entry for vip if it maps to stalePIP, returning
// whether a removal happened. A cached value different from stalePIP is a
// newer mapping and is kept (§3.3).
func (c *Cache) Invalidate(vip netaddr.VIP, stalePIP netaddr.PIP) bool {
	if len(c.lines) == 0 {
		return false
	}
	ln := c.line(vip)
	if ln.vip == vip && ln.pip == stalePIP {
		*ln = entry{}
		return true
	}
	return false
}

// HitStats implements MappingCache.
func (c *Cache) HitStats() (lookups, hits int64) { return c.Lookups, c.Hits }

// Flush implements MappingCache: clear every line, as a switch failure
// does to the register arrays. Capacity and cumulative counters survive.
func (c *Cache) Flush() {
	clear(c.lines)
}

// HitRate returns hits/lookups, or 0 with no lookups.
func (c *Cache) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}
