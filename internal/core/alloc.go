package core

import (
	"switchv2p/internal/topology"
)

// Heterogeneous memory allocation policies (§4 "Heterogeneous memory
// allocation"): the paper uses a uniform per-switch split but notes that
// different allocations might be beneficial (e.g. a ToR-only cache
// reduces Hadoop FCT but not first-packet latency) and leaves policy
// design as future work. These constructors build SizeFor functions
// that divide an aggregate entry budget according to a policy, for use
// in Options.SizeFor.

// AllocUniform spreads total entries evenly over every switch.
func AllocUniform(topo *topology.Topology, total int) func(topology.Switch) int {
	per := total / len(topo.Switches)
	return func(topology.Switch) int { return per }
}

// AllocToROnly gives the whole budget to the ToR layer (including
// gateway ToRs), evenly.
func AllocToROnly(topo *topology.Topology, total int) func(topology.Switch) int {
	n := 0
	for _, sw := range topo.Switches {
		if sw.Role.IsToR() {
			n++
		}
	}
	per := 0
	if n > 0 {
		per = total / n
	}
	return func(sw topology.Switch) int {
		if sw.Role.IsToR() {
			return per
		}
		return 0
	}
}

// AllocWeighted splits the budget across the three layers by weight
// (e.g. 1:2:4 gives cores twice a spine's share and four times a ToR's)
// and then evenly within each layer. Zero-weight layers get no cache.
func AllocWeighted(topo *topology.Topology, total int, torW, spineW, coreW float64) func(topology.Switch) int {
	var nTor, nSpine, nCore int
	for _, sw := range topo.Switches {
		switch {
		case sw.Role.IsToR():
			nTor++
		case sw.Role.IsSpine():
			nSpine++
		default:
			nCore++
		}
	}
	weightSum := torW*float64(nTor) + spineW*float64(nSpine) + coreW*float64(nCore)
	per := func(w float64) int {
		if weightSum == 0 {
			return 0
		}
		return int(float64(total) * w / weightSum)
	}
	torPer, spinePer, corePer := per(torW), per(spineW), per(coreW)
	return func(sw topology.Switch) int {
		switch {
		case sw.Role.IsToR():
			return torPer
		case sw.Role.IsSpine():
			return spinePer
		default:
			return corePer
		}
	}
}

// AllocBandwidthProportional sizes each switch proportionally to the
// traffic volume it is expected to process: spines and cores aggregate
// many racks' flows, so they receive shares proportional to their fan-in
// (racks per pod for spines, pods for cores).
func AllocBandwidthProportional(topo *topology.Topology, total int) func(topology.Switch) int {
	cfg := topo.Cfg
	return AllocWeighted(topo, total, 1, float64(cfg.RacksPerPod), float64(cfg.Pods))
}
