package core

import (
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/packet"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

type world struct {
	topo   *topology.Topology
	net    *vnet.Net
	scheme *Scheme
	e      *simnet.Engine
	vips   []netaddr.VIP
}

func newWorld(t testing.TB, opts Options) *world {
	t.Helper()
	topo, err := topology.New(topology.FT8())
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.New(topo)
	vips := n.PlaceRoundRobin(256)
	s := New(topo, opts)
	e := simnet.New(topo, n, s, simnet.DefaultConfig())
	return &world{topo: topo, net: n, scheme: s, e: e, vips: vips}
}

func (w *world) hostOf(v netaddr.VIP) int32 {
	h, ok := w.net.HostOf(v)
	if !ok {
		panic("unknown vip")
	}
	return h
}

func (w *world) send(flow uint64, seq int, src, dst netaddr.VIP, first bool) {
	p := packet.NewData(flow, seq, 1000, src, dst, 0)
	p.FirstSent = first
	w.e.HostSend(w.hostOf(src), p)
	w.e.Run(simtime.Never)
}

func TestSecondPacketHitsGatewayToR(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.LearningPackets = false // isolate the gateway-ToR cache effect
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]

	w.send(1, 0, src, dst, true)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("first packet: gateway packets = %d, want 1", w.e.C.GatewayPackets)
	}
	w.send(1, 1, src, dst, false)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("second packet should hit in-network cache; gateway packets = %d", w.e.C.GatewayPackets)
	}
	if w.scheme.S.Hits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if w.e.C.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", w.e.C.Delivered)
	}
}

func TestLearningPacketSeedsSenderToR(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0 // always generate
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	srcToR := w.topo.Hosts[w.hostOf(src)].ToR

	w.send(1, 0, src, dst, true)
	if w.e.C.LearningPkts == 0 || w.scheme.S.LearningSent == 0 {
		t.Fatal("no learning packet generated at P_learn=1")
	}
	// The sender's ToR must now know dst's mapping.
	wantPIP, _ := w.net.Lookup(dst)
	if pip, ok := w.scheme.Cache(srcToR).Peek(dst); !ok || pip != wantPIP {
		t.Fatalf("sender ToR cache for dst = %v,%v; want %v", pip, ok, wantPIP)
	}
	// The next packet resolves at the sender's ToR: first hop.
	w.send(1, 1, src, dst, false)
	if w.e.C.GatewayPackets != 1 {
		t.Fatalf("gateway packets = %d, want 1", w.e.C.GatewayPackets)
	}
	if w.scheme.S.HitsByLayer[LayerToR] == 0 {
		t.Fatal("expected a ToR-layer hit")
	}
}

func TestSourceLearningServesReply(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.LearningPackets = false
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	dstToR := w.topo.Hosts[w.hostOf(dst)].ToR

	w.send(1, 0, src, dst, true)
	// The delivery path passed dst's ToR, which source-learned the sender.
	wantPIP, _ := w.net.Lookup(src)
	if pip, ok := w.scheme.Cache(dstToR).Peek(src); !ok || pip != wantPIP {
		t.Fatalf("dst ToR did not source-learn sender: %v,%v", pip, ok)
	}
	// The reply (dst -> src) resolves at dst's ToR without the gateway.
	gw0 := w.e.C.GatewayPackets
	w.send(1, 0, dst, src, false)
	if w.e.C.GatewayPackets != gw0 {
		t.Fatalf("reply went to gateway (%d -> %d packets)", gw0, w.e.C.GatewayPackets)
	}
}

func TestFirstPacketHitAttribution(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	src2 := w.vips[128] // second VM on the same server as vips[0]

	w.send(1, 0, src, dst, true)
	w.send(2, 0, src2, dst, true) // a NEW flow whose first packet can hit
	if got := w.scheme.S.FirstHitsByLayer[LayerToR]; got != 1 {
		t.Fatalf("first-packet ToR hits = %d, want 1", got)
	}
	sh := w.scheme.S.FirstPacketHitShare()
	if sh[LayerToR] != 1.0 {
		t.Fatalf("first-packet hit share = %v, want all ToR", sh)
	}
}

func TestPromotionToCore(t *testing.T) {
	opts := DefaultOptions(64)
	opts.LearningPackets = false
	w := newWorld(t, opts)
	// Cross-pod, with the source in a NON-gateway pod (gateway spines
	// never promote): server 16 is in pod 1, server 100 in pod 6.
	src, dst := w.vips[16], w.vips[100]
	srcPod := w.topo.Hosts[w.hostOf(src)].Pod
	dstPod := w.topo.Hosts[w.hostOf(dst)].Pod
	if srcPod == dstPod {
		t.Fatalf("test needs cross-pod VMs (pods %d, %d)", srcPod, dstPod)
	}
	wantPIP, _ := w.net.Lookup(dst)
	m := netaddr.Mapping{VIP: dst, PIP: wantPIP}
	// Seed every spine in the source pod with the mapping and mark it
	// actively used (the promotion precondition).
	for _, sw := range w.topo.Switches {
		if sw.Pod == srcPod && sw.Role == topology.RoleSpine {
			w.scheme.Cache(sw.Idx).Insert(m)
			w.scheme.Cache(sw.Idx).Lookup(dst) // set access bit
		}
	}
	w.send(1, 0, src, dst, true)
	if w.scheme.S.PromoteAttached != 1 {
		t.Fatalf("promotions attached = %d, want 1", w.scheme.S.PromoteAttached)
	}
	if w.scheme.S.PromoteInserted != 1 {
		t.Fatalf("promotions inserted = %d, want 1", w.scheme.S.PromoteInserted)
	}
	// Some core now caches the mapping.
	found := false
	for _, sw := range w.topo.Switches {
		if sw.Role == topology.RoleCore {
			if pip, ok := w.scheme.Cache(sw.Idx).Peek(dst); ok && pip == wantPIP {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no core switch holds the promoted mapping")
	}
	// The packet bypassed the gateway entirely.
	if w.e.C.GatewayPackets != 0 {
		t.Fatalf("gateway packets = %d, want 0", w.e.C.GatewayPackets)
	}
}

func TestNoPromotionWithinPod(t *testing.T) {
	opts := DefaultOptions(64)
	opts.LearningPackets = false
	w := newWorld(t, opts)
	// Both VMs in pod 1 (servers 16..31 are pod 1): intra-pod traffic
	// must not promote.
	src, dst := w.vips[16], w.vips[20]
	srcPod := w.topo.Hosts[w.hostOf(src)].Pod
	if dstPod := w.topo.Hosts[w.hostOf(dst)].Pod; srcPod != dstPod {
		t.Fatalf("test needs same-pod VMs (pods %d, %d)", srcPod, dstPod)
	}
	wantPIP, _ := w.net.Lookup(dst)
	m := netaddr.Mapping{VIP: dst, PIP: wantPIP}
	for _, sw := range w.topo.Switches {
		if sw.Pod == srcPod && sw.Role == topology.RoleSpine {
			w.scheme.Cache(sw.Idx).Insert(m)
			w.scheme.Cache(sw.Idx).Lookup(dst)
		}
	}
	w.send(1, 0, src, dst, true)
	if w.scheme.S.PromoteAttached != 0 {
		t.Fatalf("promotions attached = %d, want 0 for intra-pod delivery", w.scheme.S.PromoteAttached)
	}
}

func migrationWorld(t *testing.T, opts Options) (*world, netaddr.VIP, netaddr.VIP, int32, int32) {
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	oldHost := w.hostOf(dst)
	newHost := w.hostOf(w.vips[100])
	// Warm the sender ToR via a learning packet.
	w.send(1, 0, src, dst, true)
	srcToR := w.topo.Hosts[w.hostOf(src)].ToR
	if _, ok := w.scheme.Cache(srcToR).Peek(dst); !ok {
		t.Fatal("precondition: sender ToR not warmed")
	}
	if err := w.net.Migrate(dst, newHost); err != nil {
		t.Fatal(err)
	}
	_ = oldHost
	return w, src, dst, srcToR, newHost
}

func TestMigrationInvalidation(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w, src, dst, srcToR, newHost := migrationWorld(t, opts)

	var deliveredTo int32 = -1
	w.e.Handler = func(host int32, p *packet.Packet) { deliveredTo = host }
	w.send(1, 1, src, dst, false)

	if deliveredTo != newHost {
		t.Fatalf("post-migration packet delivered to %d, want %d", deliveredTo, newHost)
	}
	if w.e.C.Misdeliveries != 1 {
		t.Fatalf("misdeliveries = %d, want 1", w.e.C.Misdeliveries)
	}
	if w.scheme.S.MisdeliveryTagged != 1 {
		t.Fatalf("tagged = %d, want 1", w.scheme.S.MisdeliveryTagged)
	}
	if w.scheme.S.InvalidationsSent != 1 {
		t.Fatalf("invalidations sent = %d, want 1", w.scheme.S.InvalidationsSent)
	}
	if w.scheme.S.EntriesInvalidated == 0 {
		t.Fatal("no cache entries invalidated")
	}
	// The stale entry at the sender's ToR is gone (or refreshed).
	oldPIP := w.topo.Hosts[w.hostOf(w.vips[9])].PIP // placeholder; recompute below
	_ = oldPIP
	if pip, ok := w.scheme.Cache(srcToR).Peek(dst); ok {
		newPIP, _ := w.net.Lookup(dst)
		if pip != newPIP {
			t.Fatalf("sender ToR still has stale mapping %v", pip)
		}
	}
	// The next packet is delivered without misdelivery.
	mis0 := w.e.C.Misdeliveries
	w.send(1, 2, src, dst, false)
	if w.e.C.Misdeliveries != mis0 {
		t.Fatal("subsequent packet still misdelivered")
	}
}

func TestMigrationWithoutInvalidationPackets(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	opts.Invalidation = false
	w, src, dst, _, newHost := migrationWorld(t, opts)

	var deliveredTo int32 = -1
	w.e.Handler = func(host int32, p *packet.Packet) { deliveredTo = host }
	w.send(1, 1, src, dst, false)
	// Correctness holds even without invalidation packets: the packet is
	// re-forwarded via the gateway.
	if deliveredTo != newHost {
		t.Fatalf("delivered to %d, want %d", deliveredTo, newHost)
	}
	if w.scheme.S.InvalidationsSent != 0 {
		t.Fatalf("invalidations sent = %d, want 0 when disabled", w.scheme.S.InvalidationsSent)
	}
}

func TestTimestampVectorSuppressesBurst(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w, src, dst, _, _ := migrationWorld(t, opts)

	// Two packets in flight nearly simultaneously: both take the stale ToR
	// entry, both are misdelivered and tagged; the second invalidation to
	// the same switch within the base RTT is suppressed.
	p1 := packet.NewData(1, 1, 1000, src, dst, 0)
	p2 := packet.NewData(1, 2, 1000, src, dst, 0)
	w.e.HostSend(w.hostOf(src), p1)
	w.e.HostSend(w.hostOf(src), p2)
	w.e.Run(simtime.Never)

	if w.scheme.S.MisdeliveryTagged != 2 {
		t.Fatalf("tagged = %d, want 2", w.scheme.S.MisdeliveryTagged)
	}
	if w.scheme.S.InvalidationsSent != 1 || w.scheme.S.InvalidationsSuppressed != 1 {
		t.Fatalf("invalidations sent=%d suppressed=%d, want 1/1",
			w.scheme.S.InvalidationsSent, w.scheme.S.InvalidationsSuppressed)
	}
}

func TestNoTimestampVectorSendsAll(t *testing.T) {
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	opts.TimestampVector = false
	w, src, dst, _, _ := migrationWorld(t, opts)

	p1 := packet.NewData(1, 1, 1000, src, dst, 0)
	p2 := packet.NewData(1, 2, 1000, src, dst, 0)
	w.e.HostSend(w.hostOf(src), p1)
	w.e.HostSend(w.hostOf(src), p2)
	w.e.Run(simtime.Never)

	if w.scheme.S.InvalidationsSent != 2 || w.scheme.S.InvalidationsSuppressed != 0 {
		t.Fatalf("invalidations sent=%d suppressed=%d, want 2/0",
			w.scheme.S.InvalidationsSent, w.scheme.S.InvalidationsSuppressed)
	}
}

func TestSpilloverWithTinyCaches(t *testing.T) {
	opts := DefaultOptions(1) // one line per switch: constant eviction
	opts.LearningPackets = false
	w := newWorld(t, opts)
	// Traffic among several VM pairs to force evictions.
	for i := 0; i < 8; i++ {
		w.send(uint64(i), 0, w.vips[i], w.vips[64+i], true)
	}
	if w.scheme.S.SpillAttached == 0 {
		t.Fatal("no spillovers attached with 1-line caches")
	}
	if w.scheme.S.SpillInserted == 0 {
		t.Fatal("no spillovers re-inserted downstream")
	}
}

func TestSpilloverDisabled(t *testing.T) {
	opts := DefaultOptions(1)
	opts.LearningPackets = false
	opts.Spillover = false
	w := newWorld(t, opts)
	for i := 0; i < 8; i++ {
		w.send(uint64(i), 0, w.vips[i], w.vips[64+i], true)
	}
	if w.scheme.S.SpillAttached != 0 || w.scheme.S.SpillInserted != 0 {
		t.Fatal("spillover active despite being disabled")
	}
}

func TestSizeForHeterogeneous(t *testing.T) {
	opts := DefaultOptions(0)
	opts.SizeFor = func(sw topology.Switch) int {
		if sw.Role.IsToR() {
			return 128
		}
		return 0
	}
	w := newWorld(t, opts)
	for _, sw := range w.topo.Switches {
		want := 0
		if sw.Role.IsToR() {
			want = 128
		}
		if got := w.scheme.Cache(sw.Idx).Len(); got != want {
			t.Fatalf("switch %d (%v) cache = %d lines, want %d", sw.Idx, sw.Role, got, want)
		}
	}
	// Traffic still flows correctly with spines/cores uncached.
	w.send(1, 0, w.vips[0], w.vips[9], true)
	if w.e.C.Delivered != 1 {
		t.Fatalf("delivered = %d", w.e.C.Delivered)
	}
}

func TestHitRateDefinition(t *testing.T) {
	// The paper's hit rate: fraction of sent packets that avoid gateways.
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	for i := 0; i < 10; i++ {
		w.send(1, i, src, dst, i == 0)
	}
	hitRate := 1 - float64(w.e.C.GatewayPackets)/float64(w.e.C.HostSent)
	if hitRate != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9 (1 compulsory miss of 10)", hitRate)
	}
}

func TestPacketStretchImproves(t *testing.T) {
	// With a warm cache, the delivery path is shorter than via gateway.
	opts := DefaultOptions(1024)
	opts.PLearn = 1.0
	w := newWorld(t, opts)
	src, dst := w.vips[0], w.vips[9]
	w.send(1, 0, src, dst, true)
	coldHops := w.e.C.DataHopsSum
	w.send(1, 1, src, dst, false)
	warmHops := w.e.C.DataHopsSum - coldHops
	if warmHops >= coldHops {
		t.Fatalf("warm path %d hops, cold path %d hops: no stretch win", warmHops, coldHops)
	}
}
