package containers

import (
	"reflect"
	"testing"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
	"switchv2p/internal/vnet"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.FT8()
	cfg.Pods = 2
	cfg.RacksPerPod = 2
	cfg.SpinesPerPod = 2
	cfg.Cores = 4
	cfg.ServersPerRack = 2
	cfg.GatewayPods = []int{0}
	cfg.GatewaysPerPod = 2
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func testConfig(topo *topology.Topology, seed int64) trace.Config {
	return trace.Config{
		Servers:     len(topo.Servers()),
		HostLinkBps: 10_000_000_000,
		Load:        0.3,
		Duration:    200 * simtime.Microsecond,
		MaxFlows:    500,
		Seed:        seed,
	}
}

func TestPlaceDensity(t *testing.T) {
	topo := testTopo(t)
	net := vnet.New(topo)
	spec := Spec{PerHost: 8, Services: 6, Tenants: 3}
	d, err := Place(net, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers := topo.Servers()
	if want := len(servers) * 8; len(d.VIPs) != want {
		t.Fatalf("placed %d containers, want %d", len(d.VIPs), want)
	}
	// Exactly PerHost containers on every server; none on gateways.
	perHost := map[int32]int{}
	for _, vip := range d.VIPs {
		h, ok := net.HostOf(vip)
		if !ok {
			t.Fatalf("container %v not placed", vip)
		}
		perHost[h]++
	}
	for _, s := range servers {
		if perHost[s] != 8 {
			t.Errorf("server %d hosts %d containers, want 8", s, perHost[s])
		}
	}
	// Every service has replicas; tenants striped 1..Tenants.
	total := 0
	for si, members := range d.Services {
		if len(members) == 0 {
			t.Errorf("service %d has no replicas", si)
		}
		total += len(members)
		if want := vnet.TenantID(1 + si%3); d.TenantOf[si] != want {
			t.Errorf("service %d tenant = %d, want %d", si, d.TenantOf[si], want)
		}
		for _, vip := range members {
			if got := net.TenantOf(vip); got != d.TenantOf[si] {
				t.Errorf("container %v tenant = %d, want %d", vip, got, d.TenantOf[si])
			}
		}
	}
	if total != len(d.VIPs) {
		t.Errorf("services cover %d containers, want %d", total, len(d.VIPs))
	}
}

func TestPlaceDeterministic(t *testing.T) {
	topo := testTopo(t)
	spec := Spec{PerHost: 4}
	d1, err := Place(vnet.New(topo), spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Place(vnet.New(topo), spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1.Services, d2.Services) {
		t.Error("same-seed placements differ")
	}
	d3, err := Place(vnet.New(topo), spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(d1.Services, d3.Services) {
		t.Error("different seeds produced identical service striping")
	}
}

func TestWorkloadShape(t *testing.T) {
	topo := testTopo(t)
	net := vnet.New(topo)
	d, err := Place(net, Spec{PerHost: 8, Services: 6, FanOut: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(topo, 1)
	w, err := d.Workload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) == 0 {
		t.Fatal("empty workload")
	}
	placed := map[netaddr.VIP]bool{}
	for _, vip := range d.VIPs {
		placed[vip] = true
	}
	// Starts stay within the duration plus the fan-out stagger.
	maxStart := simtime.Time(cfg.Duration + 100*simtime.Microsecond)
	for i := range w.Flows {
		f := &w.Flows[i]
		if f.Src == f.Dst {
			t.Fatalf("flow %d: self-directed", f.ID)
		}
		if !placed[f.Src] || !placed[f.Dst] {
			t.Fatalf("flow %d: endpoints outside the deployment", f.ID)
		}
		if f.Bytes <= 0 {
			t.Fatalf("flow %d: %d bytes", f.ID, f.Bytes)
		}
		if f.Start < 0 || f.Start > maxStart {
			t.Fatalf("flow %d: start %v outside trace window", f.ID, f.Start)
		}
	}
	// Same seed, byte-identical workload; different seed, different flows.
	w2, err := d.Workload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Flows, w2.Flows) {
		t.Error("same-seed workloads differ")
	}
	cfg3 := cfg
	cfg3.Seed = 2
	w3, err := d.Workload(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(w.Flows, w3.Flows) {
		t.Error("different seeds produced identical workloads")
	}
}

// TestReuseKnob pins the reuse-distance semantics the crossover
// experiment depends on: high Reuse concentrates each sender's traffic
// on few distinct destinations, low Reuse spreads it.
func TestReuseKnob(t *testing.T) {
	topo := testTopo(t)
	distinct := func(reuse float64) float64 {
		net := vnet.New(topo)
		d, err := Place(net, Spec{PerHost: 16, Services: 8, FanOut: 3, Reuse: reuse}, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := d.Workload(testConfig(topo, 1))
		if err != nil {
			t.Fatal(err)
		}
		bySrc := map[netaddr.VIP]map[netaddr.VIP]bool{}
		for i := range w.Flows {
			f := &w.Flows[i]
			if bySrc[f.Src] == nil {
				bySrc[f.Src] = map[netaddr.VIP]bool{}
			}
			bySrc[f.Src][f.Dst] = true
		}
		sum := 0.0
		for _, dsts := range bySrc {
			sum += float64(len(dsts))
		}
		return sum / float64(len(bySrc))
	}
	high := distinct(0.95)
	low := distinct(0.05)
	if high >= low {
		t.Errorf("mean distinct destinations per sender: reuse=0.95 gives %.2f, reuse=0.05 gives %.2f; want high reuse < low reuse", high, low)
	}
}

// TestGeneratorRegistered covers the plain trace-generator adapter: the
// "containers" generator is registered, shrinks its mesh to tiny VIP
// populations, and produces flows within the population it is handed.
func TestGeneratorRegistered(t *testing.T) {
	gen := trace.Generators["containers"]
	if gen == nil {
		t.Fatal(`trace.Generators["containers"] not registered`)
	}
	topo := testTopo(t)
	net := vnet.New(topo)
	var vips []netaddr.VIP
	for i := 0; i < 12; i++ {
		vip := net.ReserveVIP()
		if err := net.PlaceVM(vip, topo.Servers()[i%len(topo.Servers())], 1); err != nil {
			t.Fatal(err)
		}
		vips = append(vips, vip)
	}
	cfg := testConfig(topo, 5)
	cfg.VIPs = vips
	w, err := gen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) == 0 {
		t.Fatal("empty workload")
	}
	in := map[netaddr.VIP]bool{}
	for _, v := range vips {
		in[v] = true
	}
	for i := range w.Flows {
		f := &w.Flows[i]
		if !in[f.Src] || !in[f.Dst] || f.Src == f.Dst {
			t.Fatalf("flow %d: bad endpoints %v -> %v", f.ID, f.Src, f.Dst)
		}
	}
}
