// Package containers generates deterministic container-density
// workloads: hundreds of containers per host running a service mesh
// whose east-west traffic is short-flow-heavy RPC between services.
// It is the workload half of the host-vs-switch caching crossover
// (ROADMAP item 3 / ONCache): the per-host container density, the
// service fan-out, and the destination reuse distance are the three
// knobs that decide whether translations are best cached at the host
// or in the network.
//
// Two entry points:
//
//   - Place provisions Spec.PerHost containers on every server through
//     the vnet ReserveVIP/PlaceVM churn APIs, striping services across
//     hosts and tenants across services (the internal/core tenancy
//     model); Deployment.Workload then generates the mesh traffic over
//     the placed containers.
//   - Generator adapts the same traffic model to the plain
//     internal/trace generator interface (registered as "containers"),
//     deriving the service structure from the already-placed VIP
//     population, so the harness and cmd/tracegen can consume it like
//     any other trace.
package containers

import (
	"fmt"
	"math/rand"
	"sort"

	"switchv2p/internal/netaddr"
	"switchv2p/internal/simtime"
	"switchv2p/internal/trace"
	"switchv2p/internal/transport"
	"switchv2p/internal/vnet"
)

// Spec parameterizes the container deployment and its traffic.
type Spec struct {
	// PerHost is the number of containers placed on every server
	// (container density, the crossover's x-axis). Only used by Place;
	// Generator works over whatever population it is handed.
	PerHost int
	// Services is the number of services the containers are striped
	// across.
	Services int
	// Tenants is the number of tenants the services are striped across
	// (service s belongs to tenant 1 + s mod Tenants).
	Tenants int
	// FanOut is the number of downstream services each service calls per
	// request (the call-graph breadth).
	FanOut int
	// Reuse in [0,1] is the probability that a call goes to one of the
	// client host's recently used endpoints instead of a fresh replica —
	// the reuse-distance knob. Affinity is per (client host, downstream
	// service), modeling node-local connection pools (kube-proxy /
	// per-node sidecar): high Reuse means short reuse distances
	// concentrated per host (host caches thrive), low Reuse means long
	// reuse distances only in-network aggregation can capture.
	Reuse float64
	// AffinitySize is how many recent endpoints a client host remembers
	// per downstream service (the connection pool size).
	AffinitySize int
	// RPCBytes is the flow-size distribution (default AlibabaRPCCDF:
	// small request/response payloads).
	RPCBytes *trace.CDF
}

// withDefaults fills zero values.
func (s Spec) withDefaults() Spec {
	if s.PerHost == 0 {
		s.PerHost = 64
	}
	if s.Services == 0 {
		s.Services = 32
	}
	if s.Tenants == 0 {
		s.Tenants = 4
	}
	if s.FanOut == 0 {
		s.FanOut = 3
	}
	if s.Reuse == 0 {
		s.Reuse = 0.7
	}
	if s.AffinitySize == 0 {
		s.AffinitySize = 4
	}
	if s.RPCBytes == nil {
		s.RPCBytes = trace.AlibabaRPCCDF()
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch {
	case s.PerHost < 0:
		return fmt.Errorf("containers: negative per-host density")
	case s.Services < 2:
		return fmt.Errorf("containers: need at least 2 services, have %d", s.Services)
	case s.Tenants < 1:
		return fmt.Errorf("containers: need at least 1 tenant")
	case s.FanOut < 1:
		return fmt.Errorf("containers: need fan-out >= 1")
	case s.Reuse < 0 || s.Reuse > 1:
		return fmt.Errorf("containers: reuse %v outside [0,1]", s.Reuse)
	case s.AffinitySize < 1:
		return fmt.Errorf("containers: need affinity size >= 1")
	}
	return nil
}

// Deployment is a placed container fleet.
type Deployment struct {
	Spec Spec
	// VIPs is every container, in placement order (host-major).
	VIPs []netaddr.VIP
	// Services holds each service's replica containers.
	Services [][]netaddr.VIP
	// TenantOf maps each service index to its tenant.
	TenantOf []vnet.TenantID
	// HostOf records each container's server, for the per-host affinity
	// model.
	HostOf map[netaddr.VIP]int32
}

// Place provisions spec.PerHost containers on every server through the
// ReserveVIP/PlaceVM churn APIs. Services are striped across hosts (a
// host runs replicas of many services, a service spreads over many
// hosts, Kubernetes-style) and across tenants. Placement is a pure
// function of the topology, spec and seed.
func Place(net *vnet.Net, spec Spec, seed int64) (*Deployment, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	servers := net.Topology().Servers()
	total := len(servers) * spec.PerHost
	if total < spec.Services {
		return nil, fmt.Errorf("containers: %d containers cannot cover %d services", total, spec.Services)
	}
	rng := rand.New(rand.NewSource(seed))
	// Round-robin service assignment, shuffled so host↔service alignment
	// carries no accidental structure.
	svcOf := make([]int, total)
	for i := range svcOf {
		svcOf[i] = i % spec.Services
	}
	rng.Shuffle(total, func(i, j int) { svcOf[i], svcOf[j] = svcOf[j], svcOf[i] })

	d := &Deployment{
		Spec:     spec,
		VIPs:     make([]netaddr.VIP, 0, total),
		Services: make([][]netaddr.VIP, spec.Services),
		TenantOf: make([]vnet.TenantID, spec.Services),
		HostOf:   make(map[netaddr.VIP]int32, total),
	}
	for s := range d.TenantOf {
		d.TenantOf[s] = vnet.TenantID(1 + s%spec.Tenants)
	}
	idx := 0
	for _, server := range servers {
		for j := 0; j < spec.PerHost; j++ {
			svc := svcOf[idx]
			idx++
			vip := net.ReserveVIP()
			if err := net.PlaceVM(vip, server, d.TenantOf[svc]); err != nil {
				return nil, fmt.Errorf("containers: placing container %d: %w", idx-1, err)
			}
			d.VIPs = append(d.VIPs, vip)
			d.Services[svc] = append(d.Services[svc], vip)
			d.HostOf[vip] = server
		}
	}
	return d, nil
}

// Workload generates the deployment's service-mesh traffic. cfg.VIPs is
// ignored (the deployment's containers are the population); the load
// calibration, duration, flow cap and seed come from cfg.
func (d *Deployment) Workload(cfg trace.Config) (*trace.Workload, error) {
	cfg.VIPs = d.VIPs
	return generate(d.Services, d.Spec, cfg, func(vip netaddr.VIP) int32 { return d.HostOf[vip] })
}

// Generator adapts the traffic model to the internal/trace generator
// interface: the service structure is derived from cfg.VIPs (a seeded
// partition into spec.Services groups), so the workload is consumable
// wherever a trace name is — the population is simply whatever the
// harness placed. Registered as trace.Generators["containers"] with the
// default spec.
func Generator(spec Spec) func(trace.Config) (*trace.Workload, error) {
	return func(cfg trace.Config) (*trace.Workload, error) {
		spec := spec.withDefaults()
		// Shrink the mesh for tiny populations (tests) instead of failing:
		// every service needs at least one replica.
		if n := len(cfg.VIPs) / 2; spec.Services > n {
			spec.Services = n
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x636f6e74)) // "cont": distinct from the flow stream
		perm := rng.Perm(len(cfg.VIPs))
		svcs := make([][]netaddr.VIP, spec.Services)
		for i, pi := range perm {
			s := i % spec.Services
			svcs[s] = append(svcs[s], cfg.VIPs[pi])
		}
		// Without placement information, consecutive PerHost-sized chunks
		// of the population stand in as hosts for the affinity model.
		pseudoHost := make(map[netaddr.VIP]int32, len(cfg.VIPs))
		for i, vip := range cfg.VIPs {
			pseudoHost[vip] = int32(i / spec.PerHost)
		}
		return generate(svcs, spec, cfg, func(vip netaddr.VIP) int32 { return pseudoHost[vip] })
	}
}

func init() {
	trace.Generators["containers"] = Generator(Spec{})
}

// stackDepthCDF is the affinity-stack depth distribution (geometric,
// MRU-heavy): when a call reuses a recent endpoint, how far down the
// client's MRU stack it reaches. Built with the trace CDF machinery so
// the reuse-distance model matches how flow sizes are drawn.
var stackDepthCDF = trace.MustCDF([][2]float64{
	{1, 0.50}, {2, 0.75}, {3, 0.875}, {4, 0.9375}, {6, 0.98}, {8, 1.0},
})

// affKey identifies a client host's connection pool toward one
// downstream service.
type affKey struct {
	host int32
	svc  int
}

// generate produces the east-west mesh traffic over the given service
// groups. Each request picks a client service and container, then calls
// FanOut downstream services from the service's (deterministic) edge
// list; every call is one short TCP flow whose destination replica is
// drawn through the per-host affinity model.
func generate(svcs [][]netaddr.VIP, spec Spec, cfg trace.Config, hostOf func(netaddr.VIP) int32) (*trace.Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for s, members := range svcs {
		if len(members) == 0 {
			return nil, fmt.Errorf("containers: service %d has no replicas", s)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Deterministic call graph: each service calls FanOut distinct
	// downstream services.
	nSvc := len(svcs)
	fanOut := spec.FanOut
	if fanOut > nSvc-1 {
		fanOut = nSvc - 1
	}
	edges := make([][]int, nSvc)
	for s := range edges {
		seen := make(map[int]bool, fanOut)
		for len(edges[s]) < fanOut {
			t := rng.Intn(nSvc)
			if t == s || seen[t] {
				continue
			}
			seen[t] = true
			edges[s] = append(edges[s], t)
		}
	}

	// Load calibration: flows so that offered bytes ≈ Load × Servers ×
	// HostLinkBps/8 × Duration; each request contributes fanOut flows.
	mean := spec.RPCBytes.Mean()
	budget := cfg.Load * float64(cfg.Servers) * float64(cfg.HostLinkBps) / 8 * cfg.Duration.Seconds()
	nFlows := int(budget / mean)
	if cfg.MaxFlows > 0 && nFlows > cfg.MaxFlows {
		nFlows = cfg.MaxFlows
	}
	if nFlows < fanOut {
		nFlows = fanOut
	}
	nReqs := (nFlows + fanOut - 1) / fanOut

	starts := make([]simtime.Time, nReqs)
	for i := range starts {
		starts[i] = simtime.Time(rng.Int63n(int64(cfg.Duration)))
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	// hopStagger models the service's processing time before it fans out
	// to its dependencies.
	const hopStagger = 2 * simtime.Microsecond

	affinity := make(map[affKey][]netaddr.VIP)
	w := &trace.Workload{Name: "containers"}
	id := uint64(1)
	for r := 0; r < nReqs && len(w.Flows) < nFlows; r++ {
		cs := rng.Intn(nSvc) // client service
		client := svcs[cs][rng.Intn(len(svcs[cs]))]
		for hop, ds := range edges[cs] {
			if len(w.Flows) >= nFlows {
				break
			}
			dst := pickEndpoint(rng, affinity, hostOf(client), ds, svcs[ds], spec)
			w.Flows = append(w.Flows, transport.FlowSpec{
				ID: id, Src: client, Dst: dst, Proto: transport.TCP,
				Bytes: int(spec.RPCBytes.Sample(rng)) + 1,
				Start: starts[r].Add(simtime.Duration(hop) * hopStagger),
			})
			id++
		}
	}
	return w, nil
}

// pickEndpoint draws the destination replica for one call: with
// probability spec.Reuse one of the client host's pooled endpoints
// (depth drawn MRU-heavy from stackDepthCDF), otherwise a fresh replica
// that enters the front of the pool.
func pickEndpoint(rng *rand.Rand, affinity map[affKey][]netaddr.VIP, host int32, svc int, members []netaddr.VIP, spec Spec) netaddr.VIP {
	key := affKey{host, svc}
	aff := affinity[key]
	if len(aff) > 0 && rng.Float64() < spec.Reuse {
		depth := int(stackDepthCDF.Sample(rng)) - 1
		if depth < 0 {
			depth = 0
		}
		if depth >= len(aff) {
			depth = len(aff) - 1
		}
		dst := aff[depth]
		// Promote to MRU.
		copy(aff[1:depth+1], aff[:depth])
		aff[0] = dst
		return dst
	}
	dst := members[rng.Intn(len(members))]
	aff = append(aff, 0)
	copy(aff[1:], aff)
	aff[0] = dst
	if len(aff) > spec.AffinitySize {
		aff = aff[:spec.AffinitySize]
	}
	affinity[key] = aff
	return dst
}
