// Package simtime defines the simulated clock used throughout the
// simulator. Simulated time is a monotonically increasing count of
// nanoseconds since the start of a simulation run; it has no relation to
// wall-clock time, which keeps runs fully deterministic.
package simtime

import "time"

// Time is an instant in simulated time, in nanoseconds since the start of
// the run. The zero value is the start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable instant. It is used for
// "no deadline" bookkeeping.
const Never Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Std converts t to a time.Duration offset from the simulation start,
// which is convenient for formatting.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the instant as an offset, e.g. "503.2µs".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return time.Duration(t).String()
}

// Std converts the duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration, e.g. "40µs".
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// FromStd converts a time.Duration into a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Micro returns a Duration of n microseconds.
func Micro(n int64) Duration { return Duration(n) * Microsecond }

// Milli returns a Duration of n milliseconds.
func Milli(n int64) Duration { return Duration(n) * Millisecond }

// TransmitTime returns how long it takes to serialize size bytes onto a link
// of the given bandwidth in bits per second. It rounds up to a whole
// nanosecond so that back-to-back packets never overlap.
func TransmitTime(sizeBytes int, bitsPerSecond int64) Duration {
	// Plain panic message: this runs on the serialization hot path and
	// must stay free of fmt (hotpathreach); bandwidth is validated once
	// at topology wiring, so the value would add nothing here.
	if bitsPerSecond <= 0 {
		panic("simtime: non-positive bandwidth")
	}
	bits := int64(sizeBytes) * 8
	ns := (bits*int64(Second) + bitsPerSecond - 1) / bitsPerSecond
	return Duration(ns)
}
