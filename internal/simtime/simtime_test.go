package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var t0 Time
	t1 := t0.Add(40 * Microsecond)
	if got := t1.Sub(t0); got != 40*Microsecond {
		t.Fatalf("Sub = %v, want 40µs", got)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatalf("ordering broken: t0=%v t1=%v", t0, t1)
	}
	if t1.Before(t1) || t1.After(t1) {
		t.Fatalf("time must not be before/after itself")
	}
}

func TestDurationConstants(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatalf("constants wrong: s=%d ms=%d us=%d", Second, Millisecond, Microsecond)
	}
	if Micro(40) != 40*Microsecond {
		t.Fatalf("Micro(40) = %v", Micro(40))
	}
	if Milli(3) != 3*Millisecond {
		t.Fatalf("Milli(3) = %v", Milli(3))
	}
}

func TestString(t *testing.T) {
	if got := Time(1500).String(); got != "1.5µs" {
		t.Fatalf("Time(1500).String() = %q", got)
	}
	if got := Never.String(); got != "never" {
		t.Fatalf("Never.String() = %q", got)
	}
	if got := (40 * Microsecond).String(); got != "40µs" {
		t.Fatalf("Duration.String() = %q", got)
	}
}

func TestFromStd(t *testing.T) {
	if got := FromStd(3 * time.Millisecond); got != 3*Millisecond {
		t.Fatalf("FromStd = %v", got)
	}
}

func TestSecondsMicros(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Seconds(); got != 0.0015 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := d.Micros(); got != 1500 {
		t.Fatalf("Micros = %v", got)
	}
}

func TestTransmitTime(t *testing.T) {
	// 1500 bytes at 100 Gbps = 120 ns.
	if got := TransmitTime(1500, 100e9); got != 120 {
		t.Fatalf("TransmitTime(1500, 100G) = %d ns, want 120", got)
	}
	// 1500 bytes at 400 Gbps = 30 ns.
	if got := TransmitTime(1500, 400e9); got != 30 {
		t.Fatalf("TransmitTime(1500, 400G) = %d ns, want 30", got)
	}
	// Rounds up: 1 byte at 400 Gbps is 0.02 ns -> 1 ns.
	if got := TransmitTime(1, 400e9); got != 1 {
		t.Fatalf("TransmitTime(1, 400G) = %d ns, want 1", got)
	}
	if got := TransmitTime(0, 400e9); got != 0 {
		t.Fatalf("TransmitTime(0) = %d ns, want 0", got)
	}
}

func TestTransmitTimePanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero bandwidth")
		}
	}()
	TransmitTime(1, 0)
}

func TestTransmitTimeMonotonic(t *testing.T) {
	// Property: transmit time is monotonically non-decreasing in size.
	f := func(a, b uint16) bool {
		s1, s2 := int(a), int(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return TransmitTime(s1, 100e9) <= TransmitTime(s2, 100e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransmitTimeAdditiveUpperBound(t *testing.T) {
	// Property: ceil rounding means t(a)+t(b) >= t(a+b).
	f := func(a, b uint16) bool {
		return TransmitTime(int(a), 100e9)+TransmitTime(int(b), 100e9) >= TransmitTime(int(a)+int(b), 100e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdConversions(t *testing.T) {
	if got := Time(1500).Std(); got != 1500*time.Nanosecond {
		t.Fatalf("Time.Std = %v", got)
	}
	if got := (2 * Millisecond).Std(); got != 2*time.Millisecond {
		t.Fatalf("Duration.Std = %v", got)
	}
}
