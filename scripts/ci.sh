#!/usr/bin/env bash
# CI entry point: everything a reviewer needs to validate the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt failures"; exit 1; }

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== race =="
go test -race ./...

echo "== benches (one iteration each) =="
go test -bench=. -benchmem -benchtime=1x -run=NONE ./...

echo "CI OK"
