#!/usr/bin/env bash
# CI entry point: everything a reviewer needs to validate the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt failures"; exit 1; }

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== v2plint (determinism + contract lint, all nine analyzers) =="
# -json keeps the findings machine-readable for CI annotation tooling;
# a clean run prints [] and exits 0, any unwaived finding fails the build.
go run ./cmd/v2plint -json ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
else
  echo "WARNING: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./...
else
  echo "WARNING: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== tests =="
go test ./...

echo "== race =="
go test -race ./...

echo "== examples smoke =="
# Run the two examples a newcomer meets first: the README quickstart and
# the fault-injection experiment (-quick keeps it to a small config).
go run ./examples/quickstart >/dev/null
go run ./examples/faults -quick >/dev/null

echo "== benches (one iteration each, smoke) =="
# Compile-and-run every benchmark once so they cannot bit-rot; the
# allocation benches (LinkSerializer, EcmpForward, EngineEventsPerSec)
# double as smoke coverage for the allocation-free hot path.
go test -bench=. -benchmem -benchtime=1x -run='^$' ./...

echo "CI OK"
