#!/usr/bin/env bash
# CI entry point: everything a reviewer needs to validate the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt failures"; exit 1; }

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== v2plint (determinism + contract lint, all fifteen analyzers) =="
# -json keeps the findings machine-readable for CI annotation tooling;
# a clean run prints [] and exits 0, any unwaived finding fails the
# build. -time reports per-analyzer wall clock (plus call-graph
# construction) on stderr so lint-cost regressions are visible in logs.
go run ./cmd/v2plint -json -time ./...

echo "== v2plint -fix idempotence (scratch copy, fixes converge in one pass) =="
# Apply suggested fixes on a throwaway copy of the tracked tree, then
# prove the fixed point: a plain re-run reports zero findings, and a
# second -fix pass leaves every byte untouched.
fixtmp="$(mktemp -d)"
go build -o "$fixtmp/v2plint" ./cmd/v2plint
git ls-files -z | tar --null -T - -cf - | tar -xf - -C "$fixtmp" --one-top-level=scratch
(cd "$fixtmp/scratch" && "$fixtmp/v2plint" -fix ./...)
(cd "$fixtmp/scratch" && "$fixtmp/v2plint" ./...) \
  || { echo "v2plint -fix left findings behind"; rm -rf "$fixtmp"; exit 1; }
cp -a "$fixtmp/scratch/." "$fixtmp/snapshot"
(cd "$fixtmp/scratch" && "$fixtmp/v2plint" -fix ./...)
diff -r "$fixtmp/scratch" "$fixtmp/snapshot" \
  || { echo "v2plint -fix is not idempotent: a second pass changed files"; rm -rf "$fixtmp"; exit 1; }
rm -rf "$fixtmp"

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
else
  echo "WARNING: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./...
else
  echo "WARNING: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== tests =="
go test ./...

echo "== race =="
go test -race ./...

echo "== shard determinism (byte-identical reports at 1/2/4/8 workers, under -race) =="
# The sharded engine's core promise: same seed, same bytes, any worker
# count — including telemetry series, fault schedules, and the serial
# oracle. Runs under the race detector so a synchronization hole in the
# barrier protocol fails CI even if it happens not to corrupt output.
go test -race -count=1 -run 'TestShard' ./internal/harness

echo "== examples smoke =="
# Run the two examples a newcomer meets first: the README quickstart and
# the fault-injection experiment (-quick keeps it to a small config).
go run ./examples/quickstart >/dev/null
go run ./examples/faults -quick >/dev/null

echo "== benches (one iteration each, smoke) =="
# Compile-and-run every benchmark once so they cannot bit-rot; the
# allocation benches (LinkSerializer, EcmpForward, EngineEventsPerSec)
# double as smoke coverage for the allocation-free hot path.
go test -bench=. -benchmem -benchtime=1x -run='^$' ./...

echo "== v2plint timing regression guard (fresh vs committed BENCH_lint.json) =="
# Record the committed whole-module lint cost before benchsnap
# regenerates the file below; a fresh run more than 3x slower than the
# committed snapshot means an analyzer (or the call-graph build) has
# blown up and fails the build. The 3x headroom absorbs machine noise.
committed_lint_wall="$(grep -m1 '"wall_ms"' BENCH_lint.json | tr -dc '0-9.')"


echo "== production-day scenario smoke =="
# Short horizon: the quick scale compresses the six-phase operational
# day into 24ms of simulated time, so the smoke stays seconds of wall
# clock while still driving churn, a migration storm, gateway drains
# and a rolling upgrade. Assert every phase shows up with an SLO verdict.
scenario_out="$(go run ./cmd/experiments -scenario production-day -scale quick -parallel)"
for phase in morning-ramp midday-churn migration-storm gateway-autoscale rolling-upgrade evening-drain; do
  echo "$scenario_out" | grep -q "$phase" || { echo "scenario smoke: phase $phase missing from output"; exit 1; }
done
echo "$scenario_out" | grep -Eq 'pass|FAIL' || { echo "scenario smoke: no SLO verdicts in output"; exit 1; }

echo "== container crossover smoke =="
# Quick-scale host/ToR crossover: the container-overlay workload swept
# over density × reuse × cache size for the full comparison set. Assert
# every scheme produced its SLO row — a missing row means a scheme
# errored or fell out of the sweep.
crossover_out="$(go run ./cmd/experiments -container-crossover -scale quick -parallel)"
for scheme in switchv2p hostcache hosttor nocache gwcache; do
  echo "$crossover_out" | grep -Eq "^${scheme}[[:space:]]+SLO=" \
    || { echo "crossover smoke: no SLO row for scheme $scheme"; exit 1; }
done

echo "== bench snapshots (BENCH_engine.json, BENCH_scenario.json, BENCH_workload.json, BENCH_lint.json) =="
# Machine-readable perf trajectory: engine event throughput (the
# BenchmarkEngineEventsPerSec measurement), the quick production-day
# cost, container-trace generation throughput, and the full-module
# v2plint cost per analyzer (cold and warm cached runs included).
# Committing the refreshed files records the trend over time.
go run ./cmd/benchsnap -out .
fresh_lint_wall="$(grep -m1 '"wall_ms"' BENCH_lint.json | tr -dc '0-9.')"
echo "lint wall: committed ${committed_lint_wall}ms, fresh ${fresh_lint_wall}ms"
awk -v c="$committed_lint_wall" -v f="$fresh_lint_wall" 'BEGIN { exit !(c > 0 && f <= 3 * c) }' \
  || { echo "lint timing regression: fresh ${fresh_lint_wall}ms > 3x committed ${committed_lint_wall}ms"; exit 1; }

echo "CI OK"
