// Faults: crash a busy ToR switch mid-trace — with its entire V2P cache
// — and watch each translation scheme cope. While the switch is down its
// hosts are cut off (drops, retransmits); when it recovers, SwitchV2P's
// ToR restarts with a cold cache, so traffic detours through the
// translation gateways again until the switch re-learns the mappings
// from passing packets. The windowed gateway-share timeline makes that
// re-convergence visible: a spike at the failure window, decaying back
// to the steady state within a few windows, with no operator action.
//
// The same seed always produces byte-identical output (deterministic
// fault injection is the point of internal/faults).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"switchv2p"
	"switchv2p/internal/topology"
)

func main() {
	quick := flag.Bool("quick", false, "small configuration for CI smoke runs")
	flag.Parse()

	base := switchv2p.Config{
		VMs:           2048,
		TraceName:     "hadoop",
		Load:          0.30,
		Duration:      switchv2p.FromStd(time.Millisecond),
		MaxFlows:      4000,
		CacheFraction: 0.5,
		Seed:          42,
	}
	if *quick {
		base.VMs = 512
		base.Duration = switchv2p.FromStd(400 * time.Microsecond)
		base.MaxFlows = 600
	}

	// Fail the first regular (non-gateway) ToR at 30% of the trace and
	// bring it back at 50%: long enough to flush state and stall its
	// hosts' flows, short enough to watch the re-convergence after.
	w, err := switchv2p.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	victim := int32(-1)
	for _, sw := range w.Topo.Switches {
		if sw.Role == topology.RoleToR {
			victim = sw.Idx
			break
		}
	}
	if victim < 0 {
		log.Fatal("topology has no regular ToR")
	}
	failAt := switchv2p.Time(0).Add(base.Duration * 3 / 10)
	recoverAt := switchv2p.Time(0).Add(base.Duration * 5 / 10)
	faultCfg := &switchv2p.FaultsConfig{
		Schedule: []switchv2p.FaultEvent{
			{At: failAt, Kind: switchv2p.SwitchFail, Switch: victim},
			{At: recoverAt, Kind: switchv2p.SwitchRecover, Switch: victim},
		},
	}

	fmt.Printf("failing switch %d (a ToR) at %v, recovering at %v\n\n", victim, failAt, recoverAt)
	fmt.Printf("%-12s %10s %12s %12s %8s %9s %9s\n",
		"scheme", "hit rate", "avg FCT", "p99 FCT", "drops", "faultdrop", "retx")

	// Sample finely enough to bucket the run into 20 windows.
	interval := base.Duration / 100
	var v2p *switchv2p.Report
	for _, scheme := range []string{
		switchv2p.SchemeNoCache,
		switchv2p.SchemeOnDemand,
		switchv2p.SchemeSwitchV2P,
	} {
		cfg := base
		cfg.Scheme = scheme
		cfg.Faults = faultCfg
		cfg.Telemetry = &switchv2p.TelemetryOptions{Interval: interval}
		report, err := switchv2p.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.1f%% %12v %12v %8d %9d %9d\n",
			report.Scheme, 100*report.HitRate,
			report.Summary.AvgFCT, report.Summary.P99FCT,
			report.Drops, report.FaultDrops, report.Summary.Retransmits)
		if scheme == switchv2p.SchemeSwitchV2P {
			v2p = report
		}
	}

	fmt.Println()
	fmt.Println("SwitchV2P gateway share per window (packets detouring via a")
	fmt.Println("translation gateway; F = failure window, R = recovery window):")
	printGatewayShare(v2p, base.Duration, failAt, recoverAt)

	fmt.Println()
	fmt.Println("fault timeline (as exported with the telemetry JSON/CSV):")
	for _, f := range v2p.Telemetry.Faults {
		fmt.Printf("  %10.1fus  %-14s %s\n", f.TimeUs, f.Kind, f.Detail)
	}

	fmt.Println()
	fmt.Println("While the ToR is down its hosts' flows stall (fault drops,")
	fmt.Println("retransmits). The recovered switch has lost its cache, so the")
	fmt.Println("gateway share spikes at recovery and decays as the ToR")
	fmt.Println("re-learns mappings from the packets it forwards — the")
	fmt.Println("self-healing property of transparent in-network learning.")
}

// printGatewayShare buckets the sampled gateway and host-send rates into
// 20 windows and renders the per-window share of packets that needed a
// gateway translation.
func printGatewayShare(r *switchv2p.Report, traced switchv2p.Duration, failAt, recoverAt switchv2p.Time) {
	tl := r.Telemetry.Timeline
	gw := tl.Find("gateway.pkts_per_sec")
	sent := tl.Find("net.sent_per_sec")
	if gw == nil || sent == nil || len(tl.Times) == 0 {
		fmt.Println("  (no telemetry)")
		return
	}
	// The simulation runs far past the traced interval to drain stalled
	// flows through their RTO backoffs; windowing that sparse tail would
	// bury the fault dynamics. Analyze twice the traced interval.
	limit := switchv2p.Time(0).Add(2 * traced)
	n := len(sent.Values)
	for n > 0 && tl.Times[n-1].After(limit) {
		n--
	}
	if n == 0 {
		fmt.Println("  (no traffic)")
		return
	}
	const windows = 20
	per := (n + windows - 1) / windows
	for w := 0; w < windows; w++ {
		lo, hi := w*per, (w+1)*per
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		var gwPkts, sentPkts float64
		for i := lo; i < hi; i++ {
			gwPkts += gw.Values[i]
			sentPkts += sent.Values[i]
		}
		share := 0.0
		if sentPkts > 0 {
			share = gwPkts / sentPkts
		}
		mark := " "
		if !tl.Times[lo].After(failAt) && !failAt.After(tl.Times[hi-1]) {
			mark = "F"
		} else if !tl.Times[lo].After(recoverAt) && !recoverAt.After(tl.Times[hi-1]) {
			mark = "R"
		}
		bar := int(share*40 + 0.5)
		fmt.Printf("  %s %8v  %5.1f%%  %s\n", mark, tl.Times[lo], 100*share, bars(bar))
	}
}

// bars renders n block characters.
func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
