// Telemetry: watch SwitchV2P warm up. The observability subsystem
// samples every switch cache as the run progresses; plotting the ToR
// hit-rate series shows the paper's core dynamic — caches start cold,
// learn from passing traffic, and within tens of microseconds absorb
// most translations that would otherwise hit the gateways. GwCache,
// which only caches at gateway ToRs, plateaus far lower.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"switchv2p"
)

func run(scheme string) *switchv2p.Report {
	cfg := switchv2p.Config{
		VMs:           2048,
		Scheme:        scheme,
		TraceName:     "hadoop",
		Duration:      switchv2p.FromStd(400 * time.Microsecond),
		MaxFlows:      2500,
		CacheFraction: 0.5,
		Seed:          11,
		Telemetry: &switchv2p.TelemetryOptions{
			Interval: switchv2p.FromStd(10 * time.Microsecond),
		},
	}
	r, err := switchv2p.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

// sparkline renders values as a compact unicode bar chart.
func sparkline(values []float64) string {
	bars := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		i := int(v * float64(len(bars)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(bars) {
			i = len(bars) - 1
		}
		b.WriteRune(bars[i])
	}
	return b.String()
}

func main() {
	sv2p := run(switchv2p.SchemeSwitchV2P)
	gw := run(switchv2p.SchemeGwCache)

	fmt.Println("cache warm-up, sampled every 10µs (windowed ToR hit rate):")
	fmt.Println()
	for _, r := range []*switchv2p.Report{sv2p, gw} {
		tor := r.Telemetry.Timeline.Find("cache.tor.hitrate")
		if tor == nil {
			log.Fatalf("%s: no ToR hit-rate series", r.Scheme)
		}
		peak := 0.0
		for _, v := range tor.Values {
			if v > peak {
				peak = v
			}
		}
		fmt.Printf("%-12s %s\n", r.Scheme, sparkline(tor.Values))
		fmt.Printf("%-12s first window %.0f%%, peak window %.0f%%, overall hit rate %.1f%%\n",
			"", 100*tor.Values[0], 100*peak, 100*r.HitRate)
		fmt.Println()
	}

	fmt.Println("gateway offload over the same run (packets/sec into gateways):")
	for _, r := range []*switchv2p.Report{sv2p, gw} {
		s := r.Telemetry.Timeline.Find("gateway.pkts_per_sec")
		max := 0.0
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
		norm := make([]float64, len(s.Values))
		if max > 0 {
			for i, v := range s.Values {
				norm[i] = v / max
			}
		}
		fmt.Printf("%-12s %s (peak %.2fM pkts/sec)\n", r.Scheme, sparkline(norm), max/1e6)
	}

	fmt.Println()
	fmt.Printf("engine: %s\n", sv2p.Telemetry.Profile.String())

	// Full timeline to CSV for real plotting.
	f, err := os.Create("telemetry.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sv2p.Telemetry.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("full SwitchV2P timeline written to telemetry.csv")

	fmt.Println()
	fmt.Println("Every ToR learns from traffic it forwards, so SwitchV2P's")
	fmt.Println("windowed hit rate climbs within the first sampling windows")
	fmt.Println("and the gateway load curve decays sooner and peaks lower.")
	fmt.Println("GwCache caches only at the gateway-side ToRs: packets still")
	fmt.Println("detour to a gateway pod first, its overall hit rate lands")
	fmt.Println("lower, and the gateway fleet absorbs a higher packet peak.")
}
