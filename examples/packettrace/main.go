// Packettrace: capture the life of packets with the built-in pcap-style
// tracer. Follow one flow's first packet through the network under
// NoCache (via the gateway) and under SwitchV2P with a warm cache (short
// path), then dump both traces tcpdump-style and save a binary capture.
//
// This example uses internal packages directly (it is part of the
// module) to reach the tracing tap below the public façade.
package main

import (
	"fmt"
	"log"
	"os"

	"switchv2p/internal/baselines"
	"switchv2p/internal/core"
	"switchv2p/internal/packet"
	"switchv2p/internal/ptrace"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/vnet"
)

func run(label string, scheme func(*topology.Topology) simnet.Scheme, warm bool) {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		log.Fatal(err)
	}
	net := vnet.New(topo)
	vips := net.PlaceRoundRobin(256)
	e := simnet.New(topo, net, scheme(topo), simnet.DefaultConfig())
	src, dst := vips[0], vips[9]
	srcHost, _ := net.HostOf(src)

	if warm {
		// Prime the caches with one packet, untraced.
		e.HostSend(srcHost, packet.NewData(7, 0, 100, src, dst, 0))
		e.Run(simtime.Never)
	}

	tr := ptrace.New(e, ptrace.Options{FlowID: 1})
	e.HostSend(srcHost, packet.NewData(1, 0, 1000, src, dst, 0))
	e.Run(simtime.Never)

	fmt.Printf("--- %s: %d observation points ---\n", label, len(tr.Records))
	if err := tr.Dump(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Save the binary capture and prove it round-trips.
	path := "/tmp/switchv2p-" + label + ".trace"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	records, err := ptrace.Read(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s (%d records, verified round trip)\n\n", path, len(records))
}

func main() {
	run("nocache", func(*topology.Topology) simnet.Scheme { return baselines.NewNoCache() }, false)
	run("switchv2p-warm", func(t *topology.Topology) simnet.Scheme {
		opts := core.DefaultOptions(1024)
		opts.PLearn = 1.0
		return core.New(t, opts)
	}, true)
	fmt.Println("Compare the two dumps: NoCache detours through a gateway")
	fmt.Println("host; warm SwitchV2P resolves at the sender's own ToR and")
	fmt.Println("takes the direct path.")
}
