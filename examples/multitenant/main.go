// Multitenant: demonstrate the paper's §4 multitenancy design — each
// VPC gets a private partition of every switch's cache (isolated by the
// tunnel VNI), and an operator policy decides which VPCs receive
// in-network caching at all. This example builds two tenants with
// identical traffic and shows that (a) partitions are isolated, and (b)
// a policy-disabled tenant transparently falls back to pure gateway
// forwarding.
//
// This example uses the internal packages directly (it is part of the
// module) to reach the tenancy knobs that sit below the public façade.
package main

import (
	"fmt"
	"log"

	"switchv2p/internal/core"
	"switchv2p/internal/netaddr"
	"switchv2p/internal/simnet"
	"switchv2p/internal/simtime"
	"switchv2p/internal/topology"
	"switchv2p/internal/transport"
	"switchv2p/internal/vnet"
)

const (
	tenantBlue vnet.TenantID = 1
	tenantRed  vnet.TenantID = 2
)

func main() {
	topo, err := topology.New(topology.FT8())
	if err != nil {
		log.Fatal(err)
	}
	net := vnet.New(topo)

	// Two VPCs, 128 VMs each, interleaved over the same servers.
	servers := topo.Servers()
	var blue, red []netaddr.VIP
	for i := 0; i < 128; i++ {
		b, err := net.AddVMForTenant(servers[i%len(servers)], tenantBlue)
		if err != nil {
			log.Fatal(err)
		}
		r, err := net.AddVMForTenant(servers[(i+13)%len(servers)], tenantRed)
		if err != nil {
			log.Fatal(err)
		}
		blue, red = append(blue, b), append(red, r)
	}

	// SwitchV2P with per-tenant partitions: blue gets 75% of each
	// switch's lines, red 25% — but the operator has only ENABLED blue
	// (say red's gateway load does not justify switch memory yet).
	opts := core.DefaultOptions(256)
	opts.Tenancy = &core.Tenancy{
		Shares:  map[vnet.TenantID]float64{tenantBlue: 0.75, tenantRed: 0.25},
		Enabled: func(t vnet.TenantID) bool { return t == tenantBlue },
	}
	scheme := core.New(topo, opts)
	engine := simnet.New(topo, net, scheme, simnet.DefaultConfig())
	agent := transport.New(engine, transport.DefaultConfig())

	// Identical workloads for both tenants: 200 small flows with heavy
	// destination reuse.
	flowID := uint64(1)
	addFlows := func(vips []netaddr.VIP) {
		for i := 0; i < 200; i++ {
			agent.AddFlow(transport.FlowSpec{
				ID:    flowID,
				Src:   vips[i%32],
				Dst:   vips[32+i%8], // 8 hot destinations
				Proto: transport.TCP,
				Bytes: 4000,
				Start: simtime.Time(i) * simtime.Time(2*simtime.Microsecond),
			})
			flowID++
		}
	}
	addFlows(blue)
	addFlows(red)
	engine.Run(simtime.Never)

	// Per-tenant gateway load: count delivered packets per VNI.
	fmt.Println("two VPCs, same workload; in-network caching enabled for BLUE only:")
	fmt.Println()
	fmt.Printf("total gateway packets: %d of %d sent (overall hit rate %.1f%%)\n",
		engine.C.GatewayPackets, engine.C.HostSent,
		100*(1-float64(engine.C.GatewayPackets)/float64(engine.C.HostSent)))

	// Show partition isolation on the busiest ToR.
	var busiest int32
	for _, sw := range topo.Switches {
		if engine.C.SwitchPackets[sw.Idx] > engine.C.SwitchPackets[busiest] {
			busiest = sw.Idx
		}
	}
	bluePart := scheme.TenantCache(busiest, tenantBlue)
	redPart := scheme.TenantCache(busiest, tenantRed)
	fmt.Printf("\nbusiest switch %d partitions: blue %d/%d entries used, red %d/%d\n",
		busiest, bluePart.Used(), bluePart.Len(), redPart.Used(), redPart.Len())
	if redPart.Used() > 0 {
		fmt.Println("unexpected: red cached despite policy!")
	} else {
		fmt.Println("red VMs resolved exclusively via gateways (policy-disabled),")
		fmt.Println("blue traffic was cached in its private partitions.")
	}

	s := agent.Summarize()
	fmt.Printf("\nflows completed %d/%d, avg FCT %v\n", s.Completed, s.Flows, s.AvgFCT)
}
