// Production day: run the simulator through a full operational day —
// morning diurnal ramp, midday tenant churn, a VM migration storm,
// gateway fleet autoscaling, a rolling fabric upgrade, and an evening
// drain — and report each phase against its SLOs (p99 first-packet
// latency, gateway offload, cache churn).
//
// The scenario engine (internal/scenario) plans every churn operation,
// fault wave and flow start deterministically from the seed, so the
// report below is byte-identical run to run. Telemetry streams through
// a bounded ring window: the collector emits each sample incrementally and
// retains only the ring window, so the same scenario scales to hours
// of simulated time in constant memory (-day 4h).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"switchv2p"
)

// countingWriter measures streamed telemetry without retaining it —
// the point of streaming is that nobody has to hold the full series.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func main() {
	day := flag.Duration("day", 48*time.Millisecond, "simulated day length (try 4h: constant memory)")
	scheme := flag.String("scheme", switchv2p.SchemeSwitchV2P, "scheme under test")
	compare := flag.String("compare", switchv2p.SchemeGwCache, "second scheme to run (empty = none)")
	flag.Parse()

	schemes := []string{*scheme}
	if *compare != "" {
		schemes = append(schemes, *compare)
	}
	for i, s := range schemes {
		if i > 0 {
			fmt.Println()
		}
		run(s, *day)
	}
}

func run(scheme string, day time.Duration) {
	var csv countingWriter
	base := switchv2p.Config{
		VMs:           1024,
		Scheme:        scheme,
		TraceName:     "hadoop",
		Load:          0.4,
		CacheFraction: 0.5,
		Seed:          42,
		Telemetry: &switchv2p.TelemetryOptions{
			Interval: switchv2p.FromStd(200 * time.Microsecond),
			Stream:   &switchv2p.TelemetryStreamOptions{CSV: &csv, Window: 128},
		},
	}
	spec := switchv2p.ProductionDay(base, switchv2p.DayOptions{
		DayLength:  switchv2p.FromStd(day),
		FlowBudget: 4800, Churn: 32, Migrations: 24,
		UpgradeWaves: 3, DrainGateways: 2,
	})

	t0 := time.Now()
	rep, err := switchv2p.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	telem := rep.Final.Telemetry
	fmt.Printf("telemetry: %d samples streamed (%d KiB CSV), %d retained in the ring window\n",
		telem.Ticks(), csv.n/1024, len(telem.Timeline.Times))
	fmt.Printf("wall clock: %v for %.0fms simulated\n",
		time.Since(t0).Round(time.Millisecond), rep.HorizonUs/1e3)
}
