// Migration: reproduce the paper's §5.2 scenario — a 64-sender UDP
// incast whose destination VM migrates to a different rack mid-trace —
// and show how SwitchV2P's lazy invalidation protocol (misdelivery tags,
// targeted invalidation packets, timestamp vector) keeps packets flowing
// while bounding both misdeliveries and invalidation traffic.
package main

import (
	"fmt"
	"log"

	"switchv2p"
)

func main() {
	base := switchv2p.Config{
		VMs:           2048,
		CacheFraction: 0.5,
		Seed:          7,
	}

	type variant struct {
		label        string
		scheme       string
		invalidation bool
		tsVector     bool
	}
	variants := []variant{
		{"NoCache (pure gateway)", switchv2p.SchemeNoCache, true, true},
		{"OnDemand (host caches)", switchv2p.SchemeOnDemand, true, true},
		{"SwitchV2P w/o invalidations", switchv2p.SchemeSwitchV2P, false, true},
		{"SwitchV2P w/o timestamp vector", switchv2p.SchemeSwitchV2P, true, false},
		{"SwitchV2P (full)", switchv2p.SchemeSwitchV2P, true, true},
	}

	fmt.Println("64-sender incast, destination VM migrates at t=500µs (Table 4):")
	fmt.Println()
	fmt.Printf("%-32s %8s %10s %12s %14s %14s\n",
		"variant", "gw pkts", "avg lat", "misdelivered", "last misdeliv", "invalidations")

	for _, v := range variants {
		cfg := base
		cfg.Scheme = v.scheme
		cfg.V2PInvalidation = &v.invalidation
		cfg.V2PTimestampVector = &v.tsVector
		mc := switchv2p.DefaultMigrationConfig(cfg)
		mc.Senders = 32
		mc.TotalPackets = 16000
		res, err := switchv2p.Migration(mc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %7.1f%% %10v %12d %14v %14d\n",
			v.label, 100*res.GatewayPacketShare, res.AvgPacketLatency,
			res.Misdelivered, res.LastMisdeliveredArrival, res.InvalidationPkts)
	}

	fmt.Println()
	fmt.Println("Invalidation packets stop stale cache hits quickly; the")
	fmt.Println("timestamp vector suppresses redundant invalidations to the")
	fmt.Println("same switch within one base RTT (>100x fewer packets).")
}
