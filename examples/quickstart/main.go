// Quickstart: run the same Hadoop-like workload under the pure-gateway
// baseline and under SwitchV2P, and compare hit rate, flow completion
// time and first-packet latency — the paper's headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"switchv2p"
)

func main() {
	base := switchv2p.Config{
		VMs:           2048,
		TraceName:     "hadoop",
		Load:          0.30,
		Duration:      switchv2p.FromStd(500 * time.Microsecond),
		MaxFlows:      3000,
		CacheFraction: 0.5, // aggregate in-network cache = 50% of the VIP space
		Seed:          42,
	}

	fmt.Println("running the same workload under three translation schemes...")
	fmt.Println()
	fmt.Printf("%-12s %10s %12s %14s %10s\n", "scheme", "hit rate", "avg FCT", "first packet", "stretch")

	var noCacheFCT switchv2p.Duration
	for _, scheme := range []string{
		switchv2p.SchemeNoCache,
		switchv2p.SchemeSwitchV2P,
		switchv2p.SchemeDirect,
	} {
		cfg := base
		cfg.Scheme = scheme
		report, err := switchv2p.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.1f%% %12v %14v %10.2f\n",
			report.Scheme, 100*report.HitRate,
			report.Summary.AvgFCT, report.Summary.AvgFirstPacket, report.AvgStretch)
		if scheme == switchv2p.SchemeNoCache {
			noCacheFCT = report.Summary.AvgFCT
		} else if scheme == switchv2p.SchemeSwitchV2P {
			fmt.Printf("%-12s -> %.2fx faster flow completion than the gateway design\n",
				"", float64(noCacheFCT)/float64(report.Summary.AvgFCT))
		}
	}

	fmt.Println()
	fmt.Println("SwitchV2P resolves most packets inside the network (high hit")
	fmt.Println("rate), so they skip the 40µs gateway detour; Direct is the")
	fmt.Println("host-driven upper bound that ignores mapping-update costs.")
}
