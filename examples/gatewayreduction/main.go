// Gatewayreduction: reproduce the paper's Fig. 9 claim that SwitchV2P
// sustains its performance with an order of magnitude fewer translation
// gateways, while the pure-gateway design degrades sharply.
package main

import (
	"fmt"
	"log"
	"time"

	"switchv2p"
)

func main() {
	base := switchv2p.Config{
		VMs:           2048,
		TraceName:     "hadoop",
		Duration:      switchv2p.FromStd(400 * time.Microsecond),
		MaxFlows:      2500,
		CacheFraction: 0.5,
		Seed:          11,
	}

	gateways := []int{40, 20, 10, 4}
	schemes := []string{switchv2p.SchemeNoCache, switchv2p.SchemeSwitchV2P}

	points, err := switchv2p.GatewaySweep(base, gateways, schemes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shrinking the gateway fleet from 40 to 4 instances (Fig. 9):")
	fmt.Println()
	fmt.Printf("%-12s %10s %12s %14s %8s\n", "scheme", "gateways", "avg FCT", "first packet", "drops")
	baselineFCT := map[string]switchv2p.Duration{}
	for _, p := range points {
		if p.Gateways == 40 {
			baselineFCT[p.Scheme] = p.FCT
		}
		fmt.Printf("%-12s %10d %12v %14v %8d", p.Scheme, p.Gateways, p.FCT, p.FirstPacket, p.Drops)
		if b := baselineFCT[p.Scheme]; b > 0 && p.Gateways != 40 {
			fmt.Printf("   (%.2fx vs 40 gateways)", float64(p.FCT)/float64(b))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("With most translations served by in-network caches, the")
	fmt.Println("gateway fleet stops being the bottleneck: 10x fewer gateways")
	fmt.Println("leave SwitchV2P's FCT nearly flat.")
}
