// Customtopology: build a non-default fat-tree (a small 4-pod edge
// deployment with 25G server NICs and a single gateway pod), run a
// microburst-heavy workload on it, and inspect where in the topology
// SwitchV2P's cache hits land (the paper's Table 5 analysis).
package main

import (
	"fmt"
	"log"
	"time"

	"switchv2p"
)

func main() {
	// A bespoke underlay: 4 pods, 2 racks per pod, 8 servers per rack,
	// 25G host NICs, 100G fabric, one gateway pod.
	topo := switchv2p.TopologyConfig{
		Pods:           4,
		RacksPerPod:    2,
		SpinesPerPod:   2,
		Cores:          4,
		ServersPerRack: 8,
		GatewayPods:    []int{0},
		GatewaysPerPod: 4,
		HostLinkBps:    25e9,
		FabricLinkBps:  100e9,
		LinkDelay:      switchv2p.FromStd(time.Microsecond),
		BufferBytes:    16 << 20,
	}

	cfg := switchv2p.Config{
		Topo:          topo,
		VMs:           1024,
		Scheme:        switchv2p.SchemeSwitchV2P,
		TraceName:     "microbursts",
		Load:          0.25,
		Duration:      switchv2p.FromStd(time.Millisecond),
		MaxFlows:      4000,
		CacheFraction: 0.5,
		Seed:          5,
	}

	report, err := switchv2p.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology:   %v\n", report.World.Topo)
	fmt.Printf("workload:   %d microburst flows, %d packets sent\n",
		report.Summary.Flows, report.HostSent)
	fmt.Printf("hit rate:   %.1f%% (only %d packets reached a gateway)\n",
		100*report.HitRate, report.GatewayPackets)
	fmt.Printf("stretch:    %.2f switches per delivered packet\n", report.AvgStretch)

	if report.CoreStats != nil {
		tot := report.CoreStats.TotalCacheHitShare()
		first := report.CoreStats.FirstPacketHitShare()
		fmt.Println()
		fmt.Println("where do cache hits happen? (Table 5 analysis)")
		fmt.Printf("  all packets : core %5.1f%%  spine %5.1f%%  tor %5.1f%%\n",
			100*tot[2], 100*tot[1], 100*tot[0])
		fmt.Printf("  first packet: core %5.1f%%  spine %5.1f%%  tor %5.1f%%\n",
			100*first[2], 100*first[1], 100*first[0])
		fmt.Println()
		fmt.Println("First packets of new flows disproportionately hit higher-")
		fmt.Println("layer switches, whose entries are shared across racks and")
		fmt.Println("pods — the benefit of topology-aware caching.")
	}

	// Per-pod byte distribution: the gateway pod (pod 0) is no longer a
	// hotspot once translations happen in-network.
	fmt.Println()
	fmt.Println("bytes processed per pod:")
	for pod, b := range report.PerPodBytes {
		marker := ""
		if pod == 0 {
			marker = "  <- gateway pod"
		}
		fmt.Printf("  pod %d: %6d KB%s\n", pod+1, b>>10, marker)
	}
}
