module switchv2p

go 1.22
