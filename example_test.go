package switchv2p_test

import (
	"fmt"
	"time"

	"switchv2p"
)

// ExampleRun demonstrates the minimal end-to-end use of the library:
// run one workload under SwitchV2P and read the headline metrics.
func ExampleRun() {
	report, err := switchv2p.Run(switchv2p.Config{
		VMs:           512,
		Scheme:        switchv2p.SchemeSwitchV2P,
		TraceName:     "hadoop",
		Duration:      switchv2p.FromStd(100 * time.Microsecond),
		MaxFlows:      100,
		CacheFraction: 0.5,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("scheme:", report.Scheme)
	fmt.Println("all flows completed:", report.Summary.Completed == report.Summary.Flows)
	fmt.Println("some packets skipped the gateway:", report.HitRate > 0)
	// Output:
	// scheme: SwitchV2P
	// all flows completed: true
	// some packets skipped the gateway: true
}

// ExampleCacheSizeSweep reproduces the structure of the paper's Fig. 5:
// schemes swept over cache sizes, normalized against NoCache.
func ExampleCacheSizeSweep() {
	base := switchv2p.Config{
		VMs:       512,
		TraceName: "hadoop",
		Duration:  switchv2p.FromStd(100 * time.Microsecond),
		MaxFlows:  100,
		Seed:      1,
	}
	points, err := switchv2p.CacheSizeSweep(base, []float64{1.0},
		[]string{switchv2p.SchemeNoCache, switchv2p.SchemeSwitchV2P})
	if err != nil {
		panic(err)
	}
	for _, p := range points {
		fmt.Printf("%s: FCT improvement >= 1: %v\n", p.Scheme, p.FCTImprovement >= 1)
	}
	// Output:
	// NoCache: FCT improvement >= 1: true
	// SwitchV2P: FCT improvement >= 1: true
}
