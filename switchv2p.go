// Package switchv2p is a from-scratch Go implementation of SwitchV2P
// ("In-Network Address Caching for Virtual Networks", SIGCOMM 2024): an
// in-network, data-plane protocol that caches virtual-to-physical (V2P)
// address mappings inside network switches, learning them transparently
// from passing traffic.
//
// The package is a façade over the full simulation stack:
//
//   - a discrete-event, packet-level data center network simulator
//     (fat-tree topologies, bandwidth/delay links, shared-buffer
//     switches, ECMP, translation gateways);
//   - the SwitchV2P protocol (topology-aware admission policies,
//     learning packets, cache spillover, core promotion, lazy
//     invalidation) and all the paper's baselines (NoCache,
//     LocalLearning, GwCache, Bluebird, OnDemand, Direct, Controller);
//   - workload generators matching the paper's five traces;
//   - experiment harnesses that regenerate every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	report, err := switchv2p.Run(switchv2p.Config{
//		Scheme:        switchv2p.SchemeSwitchV2P,
//		TraceName:     "hadoop",
//		CacheFraction: 0.5,
//	})
//	if err != nil { ... }
//	fmt.Printf("hit rate %.1f%%, avg FCT %v\n", 100*report.HitRate, report.Summary.AvgFCT)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package switchv2p

import (
	"time"

	"switchv2p/internal/faults"
	"switchv2p/internal/harness"
	"switchv2p/internal/p4model"
	"switchv2p/internal/scenario"
	"switchv2p/internal/simtime"
	"switchv2p/internal/telemetry"
	"switchv2p/internal/topology"
	"switchv2p/internal/trace"
	"switchv2p/internal/transport"
)

// Core configuration and result types (aliased from the internal
// implementation so downstream users never import internal paths).
type (
	// Config describes one simulation run.
	Config = harness.Config
	// Report is the outcome of a run.
	Report = harness.Report
	// World is a fully assembled simulation, for advanced use.
	World = harness.World

	// TopologyConfig parameterizes the fat-tree underlay.
	TopologyConfig = topology.Config
	// TopologySwitch describes one switch (for per-switch cache sizing).
	TopologySwitch = topology.Switch
	// TraceConfig parameterizes workload generation.
	TraceConfig = trace.Config
	// Workload is a generated set of flows.
	Workload = trace.Workload
	// FlowSpec describes a single flow.
	FlowSpec = transport.FlowSpec
	// FlowRecord is a measured flow outcome.
	FlowRecord = transport.FlowRecord
	// Summary aggregates flow records.
	Summary = transport.Summary

	// SweepPoint is one measurement of a cache-size sweep (Fig. 5/6).
	SweepPoint = harness.SweepPoint
	// GatewayPoint is one measurement of a gateway-reduction sweep (Fig. 9).
	GatewayPoint = harness.GatewayPoint
	// TopologyPoint is one measurement of a topology-scaling sweep (Fig. 10).
	TopologyPoint = harness.TopologyPoint
	// MigrationConfig parameterizes the VM-migration experiment (§5.2).
	MigrationConfig = harness.MigrationConfig
	// MigrationResult is one row of Table 4.
	MigrationResult = harness.MigrationResult

	// FaultsConfig configures deterministic fault injection on a run
	// (set Config.Faults to a non-nil value).
	FaultsConfig = faults.Config
	// FaultEvent is one scheduled fault (link/switch/gateway failure or
	// recovery, loss window open/close).
	FaultEvent = faults.Event
	// FaultKind is the type of a fault event.
	FaultKind = faults.Kind
	// FaultRandomModel generates switch failures from seeded MTBF/MTTR
	// exponentials.
	FaultRandomModel = faults.RandomModel
	// FaultInjector is a run's attached injector (World.Injector).
	FaultInjector = faults.Injector
	// NodeRef identifies a switch or host for link-fault endpoints.
	NodeRef = topology.NodeRef

	// Scenario is a long-horizon, multi-phase operational scenario
	// (diurnal load, tenant churn, migration storms, gateway
	// autoscaling, rolling upgrades) with per-phase SLO probes.
	Scenario = scenario.Spec
	// ScenarioPhase is one contiguous segment of a scenario timeline.
	ScenarioPhase = scenario.Phase
	// ScenarioSLO declares a phase's service-level objectives.
	ScenarioSLO = scenario.SLO
	// ScenarioReport is the per-phase SLO report of a scenario run.
	ScenarioReport = scenario.Report
	// ScenarioPhaseReport is one phase's measured outcome.
	ScenarioPhaseReport = scenario.PhaseReport
	// DayOptions sizes the canonical ProductionDay scenario.
	DayOptions = scenario.DayOptions

	// TelemetryOptions enables the observability subsystem on a run
	// (set Config.Telemetry to a non-nil value).
	TelemetryOptions = telemetry.Options
	// TelemetryStreamOptions switches the collector to streaming
	// operation (bounded ring window, incremental CSV/NDJSON emission)
	// so long horizons sample in constant memory.
	TelemetryStreamOptions = telemetry.StreamOptions
	// TelemetryCollector holds a run's collected telemetry
	// (Report.Telemetry).
	TelemetryCollector = telemetry.Collector
	// TelemetryTimeline is the sampled time-series data.
	TelemetryTimeline = telemetry.Timeline
	// TelemetrySeries is one named series within a timeline.
	TelemetrySeries = telemetry.Series
	// EngineProfile reports event-loop throughput (events/sec, heap
	// depth, wall clock per simulated second).
	EngineProfile = telemetry.EngineProfile

	// Time is a simulated instant (nanoseconds since run start).
	Time = simtime.Time
	// Duration is a simulated time span.
	Duration = simtime.Duration
)

// FromStd converts a wall-clock time.Duration into a simulated
// Duration. This is the only sanctioned crossing from wall-clock to
// simulated time units; bare Duration(d) conversions are rejected by
// the v2plint simtimeunits analyzer.
func FromStd(d time.Duration) Duration { return simtime.FromStd(d) }

// Fault event kinds (FaultEvent.Kind).
const (
	LinkDown       = faults.LinkDown
	LinkUp         = faults.LinkUp
	SwitchFail     = faults.SwitchFail
	SwitchRecover  = faults.SwitchRecover
	GatewayOutage  = faults.GatewayOutage
	GatewayRecover = faults.GatewayRecover
	LossStart      = faults.LossStart
	LossEnd        = faults.LossEnd
)

// SwitchRef and HostRef build link-fault endpoints.
func SwitchRef(i int32) NodeRef { return topology.SwitchRef(i) }

// HostRef returns a NodeRef for host index i.
func HostRef(i int32) NodeRef { return topology.HostRef(i) }

// Scheme names accepted in Config.Scheme.
const (
	SchemeSwitchV2P     = harness.SchemeSwitchV2P
	SchemeNoCache       = harness.SchemeNoCache
	SchemeLocalLearning = harness.SchemeLocalLearning
	SchemeGwCache       = harness.SchemeGwCache
	SchemeBluebird      = harness.SchemeBluebird
	SchemeOnDemand      = harness.SchemeOnDemand
	SchemeDirect        = harness.SchemeDirect
	SchemeController    = harness.SchemeController
	SchemeHybrid        = harness.SchemeHybrid
	SchemeHostCache     = harness.SchemeHostCache
	SchemeHostToR       = harness.SchemeHostToR
)

// AllSchemes lists every supported scheme name.
func AllSchemes() []string { return append([]string(nil), harness.AllSchemes...) }

// Run builds and runs one experiment.
func Run(cfg Config) (*Report, error) { return harness.Run(cfg) }

// Build assembles a simulation without running it, for callers that
// want to schedule extra events (migrations, custom flows) first.
func Build(cfg Config) (*World, error) { return harness.Build(cfg) }

// CacheSizeSweep reproduces the Fig. 5/6 experiment structure.
func CacheSizeSweep(base Config, fractions []float64, schemes []string) ([]SweepPoint, error) {
	return harness.CacheSizeSweep(base, fractions, schemes)
}

// GatewaySweep reproduces Fig. 9.
func GatewaySweep(base Config, gatewayCounts []int, schemes []string) ([]GatewayPoint, error) {
	return harness.GatewaySweep(base, gatewayCounts, schemes)
}

// Migration runs the §5.2 incast + VM-migration experiment.
func Migration(cfg MigrationConfig) (*MigrationResult, error) {
	return harness.Migration(cfg)
}

// DefaultMigrationConfig returns the paper's §5.2 parameters.
func DefaultMigrationConfig(base Config) MigrationConfig {
	return harness.DefaultMigrationConfig(base)
}

// ProductionDay builds the canonical simulated operational day:
// morning diurnal ramp, midday tenant churn, a migration storm, gateway
// fleet autoscaling, a rolling fabric upgrade, and an evening drain.
func ProductionDay(base Config, o DayOptions) Scenario { return scenario.ProductionDay(base, o) }

// RunScenario plans and executes a scenario; same seed, same report,
// byte for byte.
func RunScenario(s Scenario) (*ScenarioReport, error) { return scenario.Run(s) }

// RunScenarioAll runs a scenario once per scheme (nil = AllSchemes)
// with at most workers concurrent runs; reports come back in scheme
// order at any worker count.
func RunScenarioAll(s Scenario, schemes []string, workers int) ([]*ScenarioReport, error) {
	return scenario.RunAll(s, schemes, workers)
}

// FT8 returns the paper's FT8-10K topology configuration (Table 3).
func FT8() TopologyConfig { return topology.FT8() }

// FT16 returns the paper's FT16-400K topology configuration (Table 3).
func FT16() TopologyConfig { return topology.FT16() }

// P4Utilization computes the Table 6 per-stage switch resource
// utilization from the analytic Tofino pipeline model.
func P4Utilization() (p4model.Utilization, error) { return p4model.Table6() }
